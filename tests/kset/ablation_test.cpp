// Tests for the ablation variant: the faithful configuration matches
// Algorithm 1 exactly; each disabled line breaks liveness in the way
// the proofs predict; safety (<= k values) survives every ablation.
#include "kset/ablation.hpp"

#include <gtest/gtest.h>

#include "adversary/figure1.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"

namespace sskel {
namespace {

RandomPsrcsParams transient_params() {
  RandomPsrcsParams params;
  params.n = 8;
  params.k = 2;
  params.root_components = 2;
  params.stabilization_round = 4;  // transient prefix
  params.noise_probability = 0.3;
  return params;
}

TEST(AblationTest, FaithfulMatchesAlgorithmOne) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomPsrcsSource a(seed, transient_params());
    const AblationRunResult ablation =
        run_ablation(a, AblationFlags{}, 2, 200);

    RandomPsrcsSource b(seed, transient_params());
    KSetRunConfig config;
    config.k = 2;
    config.max_rounds = 200;
    const KSetRunReport reference = run_kset(b, config);

    ASSERT_TRUE(ablation.all_decided);
    ASSERT_TRUE(reference.all_decided);
    EXPECT_EQ(ablation.distinct_values, reference.distinct_values);
    EXPECT_EQ(ablation.last_decision_round, reference.last_decision_round);
  }
}

TEST(AblationTest, NoForwardingStrandsFollowers) {
  // Figure 1: p6 sits outside both root components and can only
  // decide via a forwarded decide message.
  auto source = make_figure1_source();
  AblationFlags flags;
  flags.forward_decides = false;
  const AblationRunResult r = run_ablation(*source, flags, 3, 120);
  EXPECT_FALSE(r.all_decided);
  EXPECT_EQ(r.decided_count, 5);  // both roots decide, p6 never does
}

TEST(AblationTest, NoPurgeBlocksDecisionsAfterTransients) {
  // Without purging, stale transient labels never age out. In the
  // Figure 1 run the transients flow into root component A, so A's
  // members keep a foreign node in their approximation forever and
  // never pass Line 28. Root B saw no transients and still decides;
  // the follower p6 is rescued by B's forwarded decide.
  auto source = make_figure1_source();
  AblationFlags flags;
  flags.purge_old = false;
  const AblationRunResult r = run_ablation(*source, flags, 3, 120);
  EXPECT_FALSE(r.all_decided);
  EXPECT_EQ(r.decided_count, 4);  // {p3, p4, p5} of B, plus p6
}

TEST(AblationTest, NoPruneBlocksDecisionsAfterTransients) {
  auto source = make_figure1_source();
  AblationFlags flags;
  flags.prune_unreachable = false;
  const AblationRunResult r = run_ablation(*source, flags, 3, 120);
  // Stale *nodes* persist even after their edges are purged, so the
  // strong-connectivity test keeps failing.
  EXPECT_FALSE(r.all_decided);
}

TEST(AblationTest, SafetyHoldsUnderEveryAblation) {
  const std::vector<AblationFlags> variants = {
      {true, true, true, false},
      {true, false, true, true},
      {true, true, false, true},
      {false, true, true, true},
      {true, false, false, true},
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const AblationFlags& flags : variants) {
      RandomPsrcsSource source(seed, transient_params());
      const AblationRunResult r = run_ablation(source, flags, 2, 150);
      EXPECT_LE(r.distinct_values, 2)
          << "seed=" << seed << " ablation violated k-agreement";
    }
  }
}

TEST(AblationTest, FaithfulFlagAccessor) {
  EXPECT_TRUE(AblationFlags{}.faithful());
  AblationFlags f;
  f.purge_old = false;
  EXPECT_FALSE(f.faithful());
}

}  // namespace
}  // namespace sskel
