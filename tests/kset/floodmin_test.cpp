// Unit tests for the FloodMin baseline.
#include "kset/floodmin.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "adversary/crash.hpp"
#include "rounds/simulator.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

std::vector<std::unique_ptr<Algorithm<Value>>> make_procs(
    ProcId n, const std::vector<Value>& proposals, int f, int k) {
  std::vector<std::unique_ptr<Algorithm<Value>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<FloodMinProcess>(
        n, p, proposals[static_cast<std::size_t>(p)], f, k));
  }
  return procs;
}

FloodMinProcess& view(Simulator<Value>& sim, ProcId p) {
  return static_cast<FloodMinProcess&>(sim.process(p));
}

TEST(FloodMinTest, RoundsNeededFormula) {
  EXPECT_EQ(FloodMinProcess(5, 0, 1, 0, 1).rounds_needed(), 1);
  EXPECT_EQ(FloodMinProcess(5, 0, 1, 3, 1).rounds_needed(), 4);
  EXPECT_EQ(FloodMinProcess(5, 0, 1, 3, 2).rounds_needed(), 2);
  EXPECT_EQ(FloodMinProcess(9, 0, 1, 6, 3).rounds_needed(), 3);
}

TEST(FloodMinTest, FailureFreeConsensusOnMin) {
  CrashSource src(4, {});
  Simulator<Value> sim(src, make_procs(4, {9, 3, 7, 5}, 2, 1));
  sim.run(3);  // f/k + 1 = 3
  for (ProcId p = 0; p < 4; ++p) {
    ASSERT_TRUE(view(sim, p).decided());
    EXPECT_EQ(view(sim, p).decision(), 3);
    EXPECT_EQ(view(sim, p).decision_round(), 3);
  }
}

TEST(FloodMinTest, KAgreementUnderCrashes) {
  // Property sweep: random crash schedules with f crashes, k-set
  // agreement must hold among correct processes after f/k + 1 rounds.
  Rng rng(44);
  for (int trial = 0; trial < 40; ++trial) {
    const ProcId n = static_cast<ProcId>(4 + rng.next_below(5));
    const int k = static_cast<int>(1 + rng.next_below(3));
    const int f = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n - 1)));
    auto src = make_random_crash_source(mix_seed(900, static_cast<std::uint64_t>(trial)),
                                        n, f, static_cast<Round>(f / k + 1));
    std::vector<Value> proposals;
    for (ProcId p = 0; p < n; ++p) proposals.push_back(1000 + p);

    Simulator<Value> sim(*src, make_procs(n, proposals, f, k));
    sim.run(static_cast<Round>(f / k + 1));

    std::set<Value> decisions;
    for (ProcId p : src->correct_processes()) {
      ASSERT_TRUE(view(sim, p).decided());
      decisions.insert(view(sim, p).decision());
    }
    EXPECT_LE(static_cast<int>(decisions.size()), k)
        << "n=" << n << " f=" << f << " k=" << k << " trial=" << trial;
    // Validity: decisions are proposals.
    for (Value v : decisions) {
      EXPECT_GE(v, 1000);
      EXPECT_LT(v, 1000 + n);
    }
  }
}

TEST(FloodMinTest, DecidedValueStableAfterDecision) {
  CrashSource src(3, {});
  Simulator<Value> sim(src, make_procs(3, {5, 2, 8}, 0, 1));
  sim.run(1);
  ASSERT_TRUE(view(sim, 0).decided());
  const Value v = view(sim, 0).decision();
  sim.run(4);
  EXPECT_EQ(view(sim, 0).decision(), v);
}

}  // namespace
}  // namespace sskel
