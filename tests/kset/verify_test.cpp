// Unit tests for the k-set agreement property checker.
#include "kset/verify.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

Outcome decided(Value proposal, Value decision, Round round) {
  return Outcome{proposal, true, decision, round};
}

TEST(VerifyTest, AllPropertiesHold) {
  const std::vector<Outcome> outcomes{
      decided(1, 1, 4), decided(2, 1, 4), decided(3, 3, 5)};
  const KSetVerdict v = verify_kset(outcomes, 2);
  EXPECT_TRUE(v.all_hold());
  EXPECT_EQ(v.distinct_decisions, 2);
  EXPECT_EQ(v.last_decision_round, 5);
  EXPECT_TRUE(v.failures.empty());
}

TEST(VerifyTest, KAgreementViolation) {
  const std::vector<Outcome> outcomes{
      decided(1, 1, 4), decided(2, 2, 4), decided(3, 3, 4)};
  const KSetVerdict v = verify_kset(outcomes, 2);
  EXPECT_FALSE(v.k_agreement);
  EXPECT_TRUE(v.validity);
  EXPECT_TRUE(v.termination);
  EXPECT_EQ(v.distinct_decisions, 3);
  ASSERT_FALSE(v.failures.empty());
  EXPECT_NE(v.failures[0].find("k-agreement"), std::string::npos);
}

TEST(VerifyTest, ValidityViolation) {
  const std::vector<Outcome> outcomes{decided(1, 99, 3), decided(2, 1, 3)};
  const KSetVerdict v = verify_kset(outcomes, 2);
  EXPECT_FALSE(v.validity);
  EXPECT_TRUE(v.k_agreement);
}

TEST(VerifyTest, TerminationViolation) {
  std::vector<Outcome> outcomes{decided(1, 1, 3)};
  outcomes.push_back(Outcome{2, false, kNoValue, 0});
  const KSetVerdict v = verify_kset(outcomes, 1);
  EXPECT_FALSE(v.termination);
  EXPECT_FALSE(v.all_hold());
}

TEST(VerifyTest, RoundBoundEnforced) {
  const std::vector<Outcome> outcomes{decided(1, 1, 3), decided(2, 1, 9)};
  EXPECT_TRUE(verify_kset(outcomes, 1, 9).termination);
  EXPECT_FALSE(verify_kset(outcomes, 1, 8).termination);
  EXPECT_TRUE(verify_kset(outcomes, 1, 0).termination);  // 0 = no bound
}

TEST(VerifyTest, UndecidedDoNotCountTowardDistinct) {
  std::vector<Outcome> outcomes{decided(1, 1, 2)};
  outcomes.push_back(Outcome{5, false, kNoValue, 0});
  EXPECT_EQ(distinct_decisions(outcomes), 1);
}

TEST(VerifyTest, DuplicateProposalsAllowed) {
  // Two processes may propose the same value; deciding it is valid.
  const std::vector<Outcome> outcomes{decided(4, 4, 2), decided(4, 4, 2)};
  const KSetVerdict v = verify_kset(outcomes, 1);
  EXPECT_TRUE(v.all_hold());
  EXPECT_EQ(v.distinct_decisions, 1);
}

}  // namespace
}  // namespace sskel
