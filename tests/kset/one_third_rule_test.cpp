// Tests for the One-Third Rule baseline.
#include "kset/one_third_rule.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "adversary/crash.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "rounds/simulator.hpp"

namespace sskel {
namespace {

std::vector<std::unique_ptr<Algorithm<Value>>> make_procs(
    ProcId n, const std::vector<Value>& proposals) {
  std::vector<std::unique_ptr<Algorithm<Value>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<OneThirdRuleProcess>(
        n, p, proposals[static_cast<std::size_t>(p)]));
  }
  return procs;
}

OneThirdRuleProcess& view(Simulator<Value>& sim, ProcId p) {
  return static_cast<OneThirdRuleProcess&>(sim.process(p));
}

TEST(OneThirdRuleTest, FullSynchronyDecidesInTwoRounds) {
  ScheduleSource src({Digraph::complete(6)});
  Simulator<Value> sim(src, make_procs(6, {9, 4, 7, 4, 8, 6}));
  sim.step();
  // Round 1: every value appears once; smallest most-frequent is the
  // mode 4 (appears twice).
  for (ProcId p = 0; p < 6; ++p) EXPECT_EQ(view(sim, p).estimate(), 4);
  sim.step();
  // Round 2: all 6 received values equal 4 > 2n/3 = 4 -> decide.
  for (ProcId p = 0; p < 6; ++p) {
    ASSERT_TRUE(view(sim, p).decided());
    EXPECT_EQ(view(sim, p).decision(), 4);
    EXPECT_EQ(view(sim, p).decision_round(), 2);
  }
}

TEST(OneThirdRuleTest, UniqueValuesPickMinimum) {
  ScheduleSource src({Digraph::complete(4)});
  Simulator<Value> sim(src, make_procs(4, {30, 10, 20, 40}));
  sim.run(2);
  for (ProcId p = 0; p < 4; ++p) {
    ASSERT_TRUE(view(sim, p).decided());
    EXPECT_EQ(view(sim, p).decision(), 10);
  }
}

TEST(OneThirdRuleTest, StallsBelowTwoThirdsKernel) {
  // A Psrcs(2)-style sparse run: everyone hears at most 2 of 9
  // processes — far below the > 6 quorum OTR needs. No estimate ever
  // changes, nobody ever decides: OTR's assumptions are incomparable
  // with Psrcs(k).
  RandomPsrcsParams params;
  params.n = 9;
  params.k = 2;
  params.root_components = 2;
  params.max_core_size = 1;
  params.noise_probability = 0.0;
  params.follower_edge_probability = 0.0;
  RandomPsrcsSource source(3, params);
  Simulator<Value> sim(source, make_procs(9, default_proposals(9)));
  sim.run(40);
  for (ProcId p = 0; p < 9; ++p) {
    EXPECT_FALSE(view(sim, p).decided()) << "p" << p;
    EXPECT_EQ(view(sim, p).estimate(), view(sim, p).proposal());
  }
}

TEST(OneThirdRuleTest, ToleratesMinorityCrashes) {
  // f < n/3 crashes: quorums of > 2n/3 remain, consensus goes through.
  CrashEvent e{0, 1, ProcSet(7)};
  CrashSource src(7, {e});
  Simulator<Value> sim(src, make_procs(7, {5, 3, 9, 8, 6, 4, 7}));
  sim.run(6);
  std::set<Value> decisions;
  for (ProcId p = 1; p < 7; ++p) {
    ASSERT_TRUE(view(sim, p).decided()) << "p" << p;
    decisions.insert(view(sim, p).decision());
  }
  EXPECT_EQ(decisions.size(), 1u);
}

}  // namespace
}  // namespace sskel
