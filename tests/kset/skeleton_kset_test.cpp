// Unit tests for SkeletonKSetProcess: line-by-line behavior of
// Algorithm 1 on small scripted runs.
#include "kset/skeleton_kset.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "rounds/simulator.hpp"

namespace sskel {
namespace {

std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> make_procs(
    ProcId n, const std::vector<Value>& proposals,
    DecisionGuard guard = DecisionGuard::kAfterRoundN) {
  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<SkeletonKSetProcess>(
        n, p, proposals[static_cast<std::size_t>(p)], guard));
  }
  return procs;
}

SkeletonKSetProcess& view(Simulator<SkeletonMessage>& sim, ProcId p) {
  return static_cast<SkeletonKSetProcess&>(sim.process(p));
}

TEST(SkeletonKSetTest, InitialState) {
  SkeletonKSetProcess p(4, 1, 42);
  EXPECT_EQ(p.proposal(), 42);
  EXPECT_EQ(p.estimate(), 42);
  EXPECT_FALSE(p.decided());
  EXPECT_EQ(p.pt(), ProcSet::full(4));                       // Line 1
  EXPECT_EQ(p.approximation().nodes(), ProcSet::singleton(4, 1));  // Line 3
  EXPECT_EQ(p.decision_path(), DecisionPath::kNone);
}

TEST(SkeletonKSetTest, FirstMessageIsProp) {
  SkeletonKSetProcess p(3, 0, 5);
  const SkeletonMessage m = p.send(1);
  EXPECT_FALSE(m.decide);
  EXPECT_EQ(m.x, 5);
  EXPECT_EQ(m.graph.nodes(), ProcSet::singleton(3, 0));
}

TEST(SkeletonKSetTest, PtShrinksWithMissedMessages) {
  // p1 never hears p0.
  Digraph g = Digraph::complete(2);
  g.remove_edge(0, 1);
  ScheduleSource src({g});
  Simulator<SkeletonMessage> sim(src, make_procs(2, {10, 20}));
  sim.step();
  EXPECT_EQ(view(sim, 1).pt(), ProcSet::singleton(2, 1));
  EXPECT_EQ(view(sim, 0).pt(), ProcSet::full(2));
}

TEST(SkeletonKSetTest, EstimateIsMinOverTimelyNeighbors) {
  ScheduleSource src({Digraph::complete(3)});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {30, 10, 20}));
  sim.step();
  // Everyone hears everyone: all estimates drop to 10 after round 1.
  for (ProcId p = 0; p < 3; ++p) EXPECT_EQ(view(sim, p).estimate(), 10);
}

TEST(SkeletonKSetTest, EstimateIgnoresUntimelySenders) {
  // p2 hears p0 in round 1 but not round 2; p0 leaves PT(p2), so p0's
  // small value must not be adopted in round 2 (Line 27 only ranges
  // over PT).
  Digraph g1 = Digraph::complete(3);
  Digraph g2 = Digraph::complete(3);
  g2.remove_edge(0, 2);
  // In round 1 p2 heard p0 (value 1) — adopted. That is fine: the
  // estimate was taken while p0 was still timely. Use a fresh value
  // ordering so the interesting case is round 2.
  ScheduleSource src({g1, g2});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {100, 50, 60}));
  sim.step();
  EXPECT_EQ(view(sim, 2).estimate(), 50);  // min(100, 50, 60)
  sim.step();
  // p0 now untimely for p2, but p1 (50) still timely; estimate stays.
  EXPECT_EQ(view(sim, 2).pt(), ProcSet::of(3, {1, 2}));
  EXPECT_EQ(view(sim, 2).estimate(), 50);
}

TEST(SkeletonKSetTest, ApproximationAfterRoundOne) {
  ScheduleSource src({Digraph::complete(3)});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {1, 2, 3}));
  sim.step();
  const LabeledDigraph& g = view(sim, 0).approximation();
  // Line 17: every timely neighbor contributes (q -1-> p0).
  for (ProcId q = 0; q < 3; ++q) EXPECT_EQ(g.label(q, 0), 1);
  // Nothing else is known yet (received graphs were initial).
  EXPECT_EQ(g.edge_count(), 3);
}

TEST(SkeletonKSetTest, ApproximationLearnsTransitively) {
  // Chain 0 -> 1 -> 2 (plus self-loops): after 2 rounds p2 knows
  // (0 -> 1) via p1's graph (Lemma 4 with path length 1).
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ScheduleSource src({g});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {1, 2, 3}));
  sim.run(2);
  const LabeledDigraph& g2 = view(sim, 2).approximation();
  EXPECT_EQ(g2.label(0, 1), 1);  // learned, one round stale
  EXPECT_EQ(g2.label(1, 2), 2);  // fresh
}

TEST(SkeletonKSetTest, DecidesWhenStronglyConnectedAfterGuard) {
  const ProcId n = 3;
  ScheduleSource src({Digraph::complete(n)});
  Simulator<SkeletonMessage> sim(src, make_procs(n, {7, 8, 9}));
  // Guard is r > n: no decision through round n.
  sim.run(n);
  for (ProcId p = 0; p < n; ++p) EXPECT_FALSE(view(sim, p).decided());
  sim.step();  // round n+1
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_TRUE(view(sim, p).decided());
    EXPECT_EQ(view(sim, p).decision(), 7);
    EXPECT_EQ(view(sim, p).decision_path(), DecisionPath::kConnected);
    EXPECT_EQ(view(sim, p).decision_round(), n + 1);
  }
}

TEST(SkeletonKSetTest, AtRoundNGuardDecidesOneRoundEarlier) {
  const ProcId n = 3;
  ScheduleSource src({Digraph::complete(n)});
  Simulator<SkeletonMessage> sim(
      src, make_procs(n, {7, 8, 9}, DecisionGuard::kAtRoundN));
  sim.run(n);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_TRUE(view(sim, p).decided());
    EXPECT_EQ(view(sim, p).decision_round(), n);
  }
}

TEST(SkeletonKSetTest, LonerDecidesOwnValue) {
  // A process hearing nobody has the strongly connected singleton
  // approximation and must decide its own proposal (the Theorem 2
  // loner behavior).
  const ProcId n = 3;
  ScheduleSource src({Digraph::self_loops_only(n)});
  Simulator<SkeletonMessage> sim(src, make_procs(n, {5, 6, 7}));
  sim.run(n + 1);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_TRUE(view(sim, p).decided());
    EXPECT_EQ(view(sim, p).decision(), 5 + p);
  }
}

TEST(SkeletonKSetTest, DecideMessageForwarded) {
  // 0 <-> 1 strongly connected; 2 only hears 1. 2's approximation
  // never becomes strongly connected, so it can only decide via the
  // decide message (Line 10-13).
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  ScheduleSource src({g});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {4, 9, 30}));
  sim.run(8);
  EXPECT_TRUE(view(sim, 2).decided());
  EXPECT_EQ(view(sim, 2).decision_path(), DecisionPath::kForwarded);
  EXPECT_EQ(view(sim, 2).decision(), 4);
  // The forwarder decided one round earlier than the follower learned.
  EXPECT_GT(view(sim, 2).decision_round(), view(sim, 1).decision_round());
}

TEST(SkeletonKSetTest, DecidedProcessKeepsBroadcastingDecide) {
  ScheduleSource src({Digraph::complete(2)});
  Simulator<SkeletonMessage> sim(src, make_procs(2, {1, 2}));
  sim.run(6);
  ASSERT_TRUE(view(sim, 0).decided());
  const SkeletonMessage m = view(sim, 0).send(7);
  EXPECT_TRUE(m.decide);
  EXPECT_EQ(m.x, 1);
  // The graph keeps being served fresh after the decision.
  EXPECT_GT(m.graph.max_label(), 0);
}

TEST(SkeletonKSetTest, DecisionIsIrrevocable) {
  ScheduleSource src({Digraph::complete(2)});
  Simulator<SkeletonMessage> sim(src, make_procs(2, {1, 2}));
  sim.run(10);
  EXPECT_TRUE(view(sim, 0).decided());
  EXPECT_EQ(view(sim, 0).decision(), 1);
  const Round decided_at = view(sim, 0).decision_round();
  sim.run(5);
  EXPECT_EQ(view(sim, 0).decision_round(), decided_at);
  EXPECT_EQ(view(sim, 0).decision(), 1);
}

TEST(SkeletonKSetTest, PurgeDropsStaleKnowledge) {
  // 0 -> 1 timely only during rounds 1-2 on a 3-process system; after
  // n = 3 more rounds, the stale edge must leave p1's graph.
  Digraph with_edge(3);
  with_edge.add_edge(0, 1);
  Digraph without(3);
  ScheduleSource src({with_edge, with_edge, without});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {1, 2, 3}));
  sim.run(2);
  EXPECT_EQ(view(sim, 1).approximation().label(0, 1), 2);
  sim.run(3);  // rounds 3-5; cutoff at round 5 is 5-3 = 2
  EXPECT_FALSE(view(sim, 1).approximation().has_edge(0, 1));
  // 0 itself left PT(1), so it was also pruned as unreachable.
  EXPECT_FALSE(view(sim, 1).approximation().has_node(0));
}

TEST(SkeletonKSetTest, PostStabilizationRoundsReuseReachability) {
  // On a stable topology the post-purge structure of G_p repeats
  // round after round, so the Line-25/Line-28 reachability work must
  // come from the structure cache: zero fixpoints in the tail.
  ScheduleSource src({Digraph::complete(3)});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {10, 20, 30}));
  for (int r = 0; r < 4; ++r) sim.step();
  for (ProcId p = 0; p < 3; ++p) ASSERT_TRUE(view(sim, p).decided());

  const std::int64_t fixpoints_before =
      LabeledDigraph::reachability_computations();
  const std::int64_t hits_before = view(sim, 0).reachability_cache_hits();
  for (int r = 0; r < 6; ++r) sim.step();
  EXPECT_EQ(LabeledDigraph::reachability_computations(), fixpoints_before);
  EXPECT_EQ(view(sim, 0).reachability_cache_hits(), hits_before + 6);
}

TEST(SkeletonKSetTest, StructureChangeInvalidatesReachabilityCache) {
  // From round 3 on, p1 stops hearing p0, so the edge (0 -> 1) is
  // never relabeled past 2 and the round-5 purge (cutoff 5 - n = 2)
  // finally drops it from the approximations. That is the first
  // structural change after stabilization — the prune must leave the
  // cache and run a fresh fixpoint exactly there.
  Digraph full = Digraph::complete(3);
  Digraph broken = full;
  broken.remove_edge(0, 1);
  ScheduleSource src({full, full, broken});
  Simulator<SkeletonMessage> sim(src, make_procs(3, {10, 20, 30}));
  for (int r = 0; r < 4; ++r) sim.step();
  const std::int64_t before = LabeledDigraph::reachability_computations();
  sim.step();  // round 5: purge drops (0 -> 1), structure changes
  EXPECT_GT(LabeledDigraph::reachability_computations(), before);
}

TEST(SkeletonKSetDeathTest, DecisionAccessorRequiresDecided) {
  SkeletonKSetProcess p(3, 0, 1);
  EXPECT_DEATH((void)p.decision(), "precondition");
}

}  // namespace
}  // namespace sskel
