// Randomized equivalence of the branch-and-bound Psrcs(k) decision
// procedure against the brute-force C(n, k+1) enumeration: identical
// verdicts on every instance (random digraphs with n <= 12 over all
// k, the Theorem 2 impossibility graphs, and random Psrcs adversary
// skeletons), with strictly fewer subsets visited on the designated
// non-trivial instances.
#include <gtest/gtest.h>

#include "adversary/impossibility.hpp"
#include "adversary/random_psrcs.hpp"
#include "predicates/psrcs.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

Digraph random_digraph(ProcId n, double density, Rng& rng) {
  Digraph g(n);
  g.add_self_loops();
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (q != p && rng.next_bool(density)) g.add_edge(q, p);
    }
  }
  return g;
}

/// Both checkers must agree on the verdict, and a reported violating
/// subset must be a genuine counterexample: k+1 members, no 2-source.
void expect_equivalent(const Digraph& g, int k) {
  const PsrcsCheck pruned = check_psrcs_exact(g, k);
  const PsrcsCheck brute = check_psrcs_bruteforce(g, k);
  ASSERT_EQ(pruned.holds, brute.holds)
      << "n=" << g.n() << " k=" << k << " graph=" << g.to_string();
  if (!pruned.holds) {
    ASSERT_TRUE(pruned.violating_subset.has_value());
    EXPECT_EQ(pruned.violating_subset->count(), k + 1);
    EXPECT_FALSE(find_two_source(g, *pruned.violating_subset).has_value());
  }
}

TEST(PsrcsEquivalence, RandomDigraphsAllK) {
  Rng rng(0x5EED);
  for (int trial = 0; trial < 60; ++trial) {
    const ProcId n = static_cast<ProcId>(3 + rng.next_below(10));  // 3..12
    const double density = 0.05 + 0.9 * rng.next_double();
    const Digraph g = random_digraph(n, density, rng);
    for (int k = 1; k < n; ++k) expect_equivalent(g, k);
  }
}

TEST(PsrcsEquivalence, VacuousWhenSubsetsTooLarge) {
  Rng rng(0x7);
  const Digraph g = random_digraph(5, 0.4, rng);
  for (int k = 5; k <= 7; ++k) expect_equivalent(g, k);  // k + 1 > n
}

TEST(PsrcsEquivalence, ImpossibilityInstances) {
  // impossibility_graph(n, k) satisfies Psrcs(k) but violates
  // Psrcs(k-1): the k-1 loners plus the 2-source form a sourceless
  // k-subset. Both checkers must see both sides.
  for (ProcId n = 5; n <= 12; ++n) {
    for (int k = 2; k < n; ++k) {
      const Digraph g = impossibility_graph(n, k);
      expect_equivalent(g, k);
      expect_equivalent(g, k - 1);
      EXPECT_TRUE(check_psrcs_exact(g, k).holds) << "n=" << n << " k=" << k;
      if (k > 1) {
        EXPECT_FALSE(check_psrcs_exact(g, k - 1).holds)
            << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(PsrcsEquivalence, StrictlyFewerSubsetsOnNonTrivialInstances) {
  // On satisfied instances with real structure (the stable skeletons
  // of random Psrcs(k) adversaries) the branch-and-bound search must
  // visit strictly fewer subsets than the full enumeration — this is
  // the pruning claim of the PR, pinned as a test.
  struct Instance {
    ProcId n;
    int k;
  };
  const Instance instances[] = {{10, 2}, {12, 3}, {14, 3}, {16, 4}};
  for (const Instance& inst : instances) {
    RandomPsrcsParams params;
    params.n = inst.n;
    params.k = inst.k;
    params.root_components = inst.k;
    RandomPsrcsSource source(0xBB, params);
    const Digraph& skel = source.stable_skeleton();
    const PsrcsCheck pruned = check_psrcs_exact(skel, inst.k);
    const PsrcsCheck brute = check_psrcs_bruteforce(skel, inst.k);
    ASSERT_TRUE(pruned.holds);
    ASSERT_TRUE(brute.holds);
    EXPECT_LT(pruned.subsets_checked, brute.subsets_checked)
        << "n=" << inst.n << " k=" << inst.k;
  }
}

}  // namespace
}  // namespace sskel
