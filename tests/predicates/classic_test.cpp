// Tests for the classic per-round HO properties and their relation to
// the paper's perpetual predicate.
#include "predicates/classic.hpp"

#include <gtest/gtest.h>

#include "adversary/rotating.hpp"
#include "predicates/psrcs.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

TEST(RoundKernelTest, StarKernelIsCenter) {
  Digraph g = Digraph::self_loops_only(5);
  for (ProcId p = 0; p < 5; ++p) g.add_edge(2, p);
  EXPECT_EQ(round_kernel(g), ProcSet::singleton(5, 2));
  EXPECT_TRUE(has_nonempty_kernel(g));
}

TEST(RoundKernelTest, CompleteGraphKernelIsEverything) {
  EXPECT_EQ(round_kernel(Digraph::complete(4)), ProcSet::full(4));
}

TEST(RoundKernelTest, SelfLoopsOnlyHasEmptyKernel) {
  EXPECT_TRUE(round_kernel(Digraph::self_loops_only(3)).empty());
  EXPECT_FALSE(has_nonempty_kernel(Digraph::self_loops_only(3)));
}

TEST(NonsplitTest, StarIsNonsplit) {
  Digraph g = Digraph::self_loops_only(4);
  for (ProcId p = 0; p < 4; ++p) g.add_edge(1, p);
  EXPECT_TRUE(is_nonsplit(g));
}

TEST(NonsplitTest, SelfLoopsOnlyIsSplit) {
  EXPECT_FALSE(is_nonsplit(Digraph::self_loops_only(3)));
}

TEST(NonsplitTest, KernelImpliesNonsplitProperty) {
  // Known HO-taxonomy implication, on random graphs.
  Rng rng(606);
  int kernel_rounds = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const ProcId n = static_cast<ProcId>(2 + rng.next_below(8));
    Digraph g(n);
    g.add_self_loops();
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.4)) g.add_edge(q, p);
      }
    }
    if (has_nonempty_kernel(g)) {
      ++kernel_rounds;
      EXPECT_TRUE(is_nonsplit(g));
    }
  }
  EXPECT_GT(kernel_rounds, 0);  // the sweep must exercise the premise
}

TEST(NonsplitTest, EquivalentToPerRoundPsrcs1) {
  // nonsplit(G) is exactly "every 2-subset has a 2-source" evaluated
  // on G itself.
  Rng rng(707);
  for (int trial = 0; trial < 50; ++trial) {
    const ProcId n = static_cast<ProcId>(2 + rng.next_below(7));
    Digraph g(n);
    g.add_self_loops();
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.3)) g.add_edge(q, p);
      }
    }
    EXPECT_EQ(is_nonsplit(g), check_psrcs_exact(g, 1).holds);
  }
}

TEST(ProfileRunTest, RotatingStarProfile) {
  auto source = make_rotating_star_source(5);
  std::vector<Digraph> run;
  for (Round r = 1; r <= 15; ++r) run.push_back(source->graph(r));
  const RunSynchronyProfile profile = profile_run(run);
  EXPECT_EQ(profile.rounds, 15);
  // Every round individually is maximally synchronous...
  EXPECT_EQ(profile.rounds_with_kernel, 15);
  EXPECT_EQ(profile.nonsplit_rounds, 15);
  // ...but nothing persists: empty perpetual kernel, bare skeleton.
  EXPECT_TRUE(profile.perpetual_kernel.empty());
  EXPECT_EQ(profile.skeleton, Digraph::self_loops_only(5));
}

TEST(ProfileRunTest, FixedStarProfile) {
  auto source = make_rotating_star_source(5, /*hold=*/1000);
  std::vector<Digraph> run;
  for (Round r = 1; r <= 10; ++r) run.push_back(source->graph(r));
  const RunSynchronyProfile profile = profile_run(run);
  EXPECT_EQ(profile.perpetual_kernel, ProcSet::singleton(5, 0));
  EXPECT_TRUE(check_psrcs_exact(profile.skeleton, 1).holds);
}

}  // namespace
}  // namespace sskel
