// Tests for the HO / RbR-fault-detector correspondences (Eq. (6), (7)).
#include "predicates/ho_view.hpp"

#include <gtest/gtest.h>

#include "skeleton/tracker.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

Digraph random_graph(Rng& rng, ProcId n, double density) {
  Digraph g(n);
  g.add_self_loops();
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (q != p && rng.next_bool(density)) g.add_edge(q, p);
    }
  }
  return g;
}

TEST(HoRecorderTest, HoSetsMatchInNeighbors) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(1, 3);
  HoRecorder rec(4);
  rec.record(1, g);
  EXPECT_EQ(rec.ho(1, 1), ProcSet::of(4, {0, 2}));
  EXPECT_EQ(rec.ho(3, 1), ProcSet::of(4, {1}));
  EXPECT_EQ(rec.ho(0, 1), ProcSet(4));
}

TEST(HoRecorderTest, DIsComplementOfHo) {
  Digraph g(4);
  g.add_self_loops();
  g.add_edge(0, 1);
  HoRecorder rec(4);
  rec.record(1, g);
  EXPECT_EQ(rec.d(1, 1), ProcSet::of(4, {2, 3}));
  EXPECT_EQ(rec.d(1, 1) | rec.ho(1, 1), ProcSet::full(4));
}

TEST(HoRecorderTest, Equation7BothFormsAgree) {
  // PT via running HO intersection == PT via complement of D union.
  Rng rng(42);
  HoRecorder rec(6);
  for (Round r = 1; r <= 8; ++r) rec.record(r, random_graph(rng, 6, 0.5));
  for (Round r = 1; r <= 8; ++r) {
    for (ProcId p = 0; p < 6; ++p) {
      EXPECT_EQ(rec.pt_via_ho(p, r), rec.pt_via_d(p, r))
          << "p=" << p << " r=" << r;
    }
  }
}

TEST(HoRecorderTest, Equation6SkeletonMatchesHoIntersection) {
  // (q -> p) in E∩r  <=>  q in HO(p, r') for all r' <= r.
  Rng rng(7);
  HoRecorder rec(5);
  SkeletonTracker tracker(5);
  for (Round r = 1; r <= 10; ++r) {
    const Digraph g = random_graph(rng, 5, 0.6);
    rec.record(r, g);
    tracker.observe(r, g);
    for (ProcId p = 0; p < 5; ++p) {
      EXPECT_EQ(tracker.pt(p), rec.pt_via_ho(p, r)) << "p=" << p << " r=" << r;
    }
  }
}

TEST(HoRecorderTest, PtShrinksMonotonically) {
  // Eq. (3): PT(p, r) superset PT(p, r+1).
  Rng rng(13);
  HoRecorder rec(6);
  for (Round r = 1; r <= 12; ++r) rec.record(r, random_graph(rng, 6, 0.4));
  for (ProcId p = 0; p < 6; ++p) {
    for (Round r = 1; r < 12; ++r) {
      EXPECT_TRUE(rec.pt_via_ho(p, r + 1).is_subset_of(rec.pt_via_ho(p, r)));
    }
  }
}

}  // namespace
}  // namespace sskel
