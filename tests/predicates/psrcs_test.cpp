// Unit tests for the Psrcs(k) predicate machinery (Sec. III, Eq. (8)).
#include "predicates/psrcs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "adversary/figure1.hpp"
#include "adversary/impossibility.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

TEST(FindTwoSourceTest, FindsCommonSource) {
  Digraph g(5);
  g.add_self_loops();
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto w = find_two_source(g, ProcSet::of(5, {1, 2}));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->source, 0);
  EXPECT_EQ(w->receiver_a, 1);
  EXPECT_EQ(w->receiver_b, 2);
}

TEST(FindTwoSourceTest, SelfLoopCountsAsSource) {
  // p = q is allowed: q hears itself and q' hears q.
  Digraph g(4);
  g.add_self_loops();
  g.add_edge(1, 3);
  const auto w = find_two_source(g, ProcSet::of(4, {1, 3}));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->source, 1);
}

TEST(FindTwoSourceTest, NoSourceForIsolatedPair) {
  Digraph g(4);
  g.add_self_loops();  // only self-loops: nobody reaches two receivers
  EXPECT_FALSE(find_two_source(g, ProcSet::of(4, {0, 1})).has_value());
}

TEST(CheckPsrcsExactTest, StarSatisfiesPsrcs1) {
  // A star 0 -> everyone satisfies Psrcs(1): any 2 processes hear 0.
  Digraph g(6);
  g.add_self_loops();
  for (ProcId p = 0; p < 6; ++p) g.add_edge(0, p);
  const PsrcsCheck check = check_psrcs_exact(g, 1);
  EXPECT_TRUE(check.holds);
  // The brute-force oracle enumerates every pair; the exact checker
  // only materializes sourceless partial subsets.
  const PsrcsCheck brute = check_psrcs_bruteforce(g, 1);
  EXPECT_TRUE(brute.holds);
  EXPECT_EQ(brute.subsets_checked, 15);  // C(6,2)
  EXPECT_LT(check.subsets_checked, brute.subsets_checked);
}

TEST(CheckPsrcsExactTest, SelfLoopsOnlyViolatesEveryK) {
  const Digraph g = Digraph::self_loops_only(5);
  for (int k = 1; k <= 3; ++k) {
    const PsrcsCheck check = check_psrcs_exact(g, k);
    EXPECT_FALSE(check.holds) << "k=" << k;
    ASSERT_TRUE(check.violating_subset.has_value());
    EXPECT_EQ(check.violating_subset->count(), k + 1);
    EXPECT_FALSE(
        find_two_source(g, *check.violating_subset).has_value());
  }
}

TEST(CheckPsrcsExactTest, Figure1SatisfiesPsrcs3ButNotPsrcs1) {
  // The paper's Figure 1 run: Psrcs(3) holds (its two root components
  // sit under a hub cover of size <= 3). Psrcs(1) must fail — the two
  // root components are independent, so e.g. {p1, p3} has no common
  // source. (Psrcs(2) also happens to hold for this topology, which is
  // consistent: it only has 2 root components.)
  const Digraph skel = figure1_stable_skeleton();
  EXPECT_TRUE(check_psrcs_exact(skel, kFigure1K).holds);
  EXPECT_TRUE(check_psrcs_exact(skel, 2).holds);
  const PsrcsCheck k1 = check_psrcs_exact(skel, 1);
  EXPECT_FALSE(k1.holds);
  ASSERT_TRUE(k1.violating_subset.has_value());
  EXPECT_EQ(k1.violating_subset->count(), 2);
}

TEST(CheckPsrcsExactTest, ImpossibilityRunSatisfiesPsrcsK) {
  // Theorem 2's run is *constructed* to satisfy Psrcs(k).
  for (ProcId n : {5, 8}) {
    for (int k = 2; k < 5; ++k) {
      const Digraph g = impossibility_graph(n, k);
      EXPECT_TRUE(check_psrcs_exact(g, k).holds) << "n=" << n << " k=" << k;
      // ... and (as the proof needs) it cannot satisfy Psrcs(k-1):
      // the k-1 loners plus one follower form a violating k-subset.
      EXPECT_FALSE(check_psrcs_exact(g, k - 1).holds)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CheckPsrcsExactTest, MonotoneInK) {
  // Psrcs(k) implies Psrcs(k+1): a 2-source for every (k+1)-subset of
  // a (k+2)-subset serves (pick any (k+1)-subset inside).
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Digraph g(7);
    g.add_self_loops();
    for (ProcId q = 0; q < 7; ++q) {
      for (ProcId p = 0; p < 7; ++p) {
        if (rng.next_bool(0.25)) g.add_edge(q, p);
      }
    }
    bool prev = check_psrcs_exact(g, 1).holds;
    for (int k = 2; k <= 5; ++k) {
      const bool cur = check_psrcs_exact(g, k).holds;
      if (prev) {
        EXPECT_TRUE(cur) << "monotonicity broken at k=" << k;
      }
      prev = cur;
    }
  }
}

TEST(CheckPsrcsSampledTest, FindsViolationsEventually) {
  const Digraph g = Digraph::self_loops_only(8);
  Rng rng(5);
  const PsrcsCheck check = check_psrcs_sampled(g, 2, 200, rng);
  EXPECT_FALSE(check.holds);
  // A sampled violation carries its witness, so it is a certificate.
  EXPECT_TRUE(check.certified);
  EXPECT_EQ(check.confidence, 1.0);
  ASSERT_TRUE(check.violating_subset.has_value());
}

TEST(CheckPsrcsSampledTest, NeverRefutesTrue) {
  Digraph g(12);
  g.add_self_loops();
  for (ProcId p = 0; p < 12; ++p) g.add_edge(3, p);
  Rng rng(6);
  const PsrcsCheck check = check_psrcs_sampled(g, 1, 500, rng);
  EXPECT_TRUE(check.holds);
  EXPECT_EQ(check.subsets_checked, 500);
  // ... but a sampled pass is NOT a proof, and says so.
  EXPECT_FALSE(check.certified);
  EXPECT_GT(check.confidence, 0.0);
  EXPECT_LT(check.confidence, 1.0);
}

TEST(CheckPsrcsSampledTest, PassConfidenceMatchesMissBound) {
  // n = 10, k = 2: C(10, 3) = 120 subsets, so s no-hit samples refute
  // a (hypothetical) single violator with confidence
  // 1 - (1 - 1/120)^s.
  Digraph g(10);
  g.add_self_loops();
  for (ProcId p = 0; p < 10; ++p) g.add_edge(0, p);
  EXPECT_EQ(binomial_double(10, 3), 120.0);
  for (const int samples : {1, 10, 400}) {
    Rng rng(static_cast<std::uint64_t>(samples));
    const PsrcsCheck check = check_psrcs_sampled(g, 2, samples, rng);
    ASSERT_TRUE(check.holds);
    EXPECT_FALSE(check.certified);
    const double expected =
        -std::expm1(static_cast<double>(samples) * std::log1p(-1.0 / 120.0));
    EXPECT_DOUBLE_EQ(check.confidence, expected);
  }
  // More samples => strictly more confidence.
  Rng rng_a(1);
  Rng rng_b(1);
  EXPECT_LT(check_psrcs_sampled(g, 2, 10, rng_a).confidence,
            check_psrcs_sampled(g, 2, 1000, rng_b).confidence);
  // Zero samples refute nothing.
  Rng rng_c(1);
  EXPECT_EQ(check_psrcs_sampled(g, 2, 0, rng_c).confidence, 0.0);
}

TEST(CheckPsrcsSampledTest, VacuousWhenSubsetTooLarge) {
  const Digraph g = Digraph::self_loops_only(3);
  Rng rng(7);
  const PsrcsCheck check = check_psrcs_sampled(g, 5, 100, rng);
  EXPECT_TRUE(check.holds);
  // No (k+1)-subsets exist: the pass is a (vacuous) proof.
  EXPECT_TRUE(check.certified);
  EXPECT_EQ(check.confidence, 1.0);
}

TEST(CheckPsrcsExactTest, VerdictsAreAlwaysCertified) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Digraph g(8);
    g.add_self_loops();
    for (ProcId q = 0; q < 8; ++q) {
      for (ProcId p = 0; p < 8; ++p) {
        if (rng.next_bool(0.2)) g.add_edge(q, p);
      }
    }
    for (const int k : {1, 2, 3}) {
      const PsrcsCheck exact = check_psrcs_exact(g, k);
      const PsrcsCheck brute = check_psrcs_bruteforce(g, k);
      EXPECT_TRUE(exact.certified);
      EXPECT_EQ(exact.confidence, 1.0);
      EXPECT_TRUE(brute.certified);
      EXPECT_EQ(brute.confidence, 1.0);
    }
  }
}

TEST(HubCoverTest, GreedyFindsCover) {
  Digraph g(6);
  g.add_self_loops();
  for (ProcId p = 0; p < 3; ++p) g.add_edge(0, p);
  for (ProcId p = 3; p < 6; ++p) g.add_edge(3, p);
  const auto cover = greedy_hub_cover(g);
  ASSERT_TRUE(cover.has_value());
  EXPECT_TRUE(is_hub_cover(g, *cover));
  EXPECT_LE(cover->count(), 2);
}

TEST(HubCoverTest, CoverImpliesPsrcs) {
  // The pigeonhole argument: hub cover of size j => Psrcs(j).
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    Digraph g(8);
    g.add_self_loops();
    for (ProcId q = 0; q < 8; ++q) {
      for (ProcId p = 0; p < 8; ++p) {
        if (rng.next_bool(0.3)) g.add_edge(q, p);
      }
    }
    const auto cover = greedy_hub_cover(g);
    ASSERT_TRUE(cover.has_value());
    const int j = cover->count();
    if (j < 8) {
      EXPECT_TRUE(check_psrcs_exact(g, j).holds)
          << "hub cover of size " << j << " must imply Psrcs(" << j << ")";
    }
  }
}

TEST(HubCoverTest, SelfLoopsGiveTrivialCover) {
  const Digraph g = Digraph::self_loops_only(4);
  const auto cover = greedy_hub_cover(g);
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->count(), 4);  // everyone must cover themselves
}

TEST(HubCoverTest, IsHubCoverRejectsNonCover) {
  Digraph g(4);
  g.add_self_loops();
  EXPECT_FALSE(is_hub_cover(g, ProcSet::of(4, {0})));
  EXPECT_TRUE(is_hub_cover(g, ProcSet::full(4)));
}

}  // namespace
}  // namespace sskel
