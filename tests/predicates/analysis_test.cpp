// Tests for the skeleton-analysis utilities (min Psrcs k, largest
// sourceless subset, Theorem 1 profiles).
#include "predicates/analysis.hpp"

#include <gtest/gtest.h>

#include "adversary/figure1.hpp"
#include "adversary/impossibility.hpp"
#include "graph/scc.hpp"
#include "predicates/psrcs.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

TEST(MaxSourcelessSubsetTest, SelfLoopsOnlyIsAllSourceless) {
  // With only self-loops, |out(p) cap S| <= 1 for every p and any S.
  EXPECT_EQ(max_sourceless_subset(Digraph::self_loops_only(5)), 5);
}

TEST(MaxSourcelessSubsetTest, StarCollapsesToPairBound) {
  // Star 0 -> everyone (+self-loops): any two processes share source
  // 0, so only singletons are sourceless.
  Digraph g(6);
  g.add_self_loops();
  for (ProcId p = 0; p < 6; ++p) g.add_edge(0, p);
  EXPECT_EQ(max_sourceless_subset(g), 1);
}

TEST(MaxSourcelessSubsetTest, ImpossibilityRunHasExactlyK) {
  // L (k-1 loners) plus any one non-source process is sourceless; any
  // k+1 processes include two followers of s.
  for (int k = 2; k <= 5; ++k) {
    EXPECT_EQ(max_sourceless_subset(impossibility_graph(8, k)), k)
        << "k=" << k;
  }
}

TEST(MinPsrcsKTest, AgreesWithExactChecker) {
  Rng rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    const ProcId n = static_cast<ProcId>(3 + rng.next_below(7));
    Digraph g(n);
    g.add_self_loops();
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (q != p && rng.next_bool(0.3)) g.add_edge(q, p);
      }
    }
    const auto k = min_psrcs_k(g);
    if (!k.has_value()) {
      EXPECT_FALSE(check_psrcs_exact(g, static_cast<int>(n) - 1).holds);
      continue;
    }
    EXPECT_TRUE(check_psrcs_exact(g, *k).holds) << "n=" << n;
    if (*k > 1) {
      EXPECT_FALSE(check_psrcs_exact(g, *k - 1).holds) << "n=" << n;
    }
  }
}

TEST(MinPsrcsKTest, KnownSkeletons) {
  EXPECT_EQ(min_psrcs_k(figure1_stable_skeleton()), 2);
  Digraph star(5);
  star.add_self_loops();
  for (ProcId p = 0; p < 5; ++p) star.add_edge(2, p);
  EXPECT_EQ(min_psrcs_k(star), 1);
  EXPECT_EQ(min_psrcs_k(Digraph::self_loops_only(4)), std::nullopt);
}

TEST(ProfileTest, Theorem1ConsistencyOnRandomSkeletons) {
  // Theorem 1 in profile form: #root components <= min-k, always.
  Rng rng(505);
  for (int trial = 0; trial < 30; ++trial) {
    const ProcId n = static_cast<ProcId>(3 + rng.next_below(8));
    Digraph g(n);
    g.add_self_loops();
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (q != p && rng.next_bool(rng.next_double() * 0.5)) {
          g.add_edge(q, p);
        }
      }
    }
    const PredicateProfile profile = profile_skeleton(g);
    EXPECT_TRUE(profile.theorem1_consistent)
        << "roots=" << profile.root_components << " min_k=" << profile.min_k;
    EXPECT_EQ(profile.root_components,
              static_cast<int>(root_components(g).size()));
  }
}

TEST(ProfileTest, ImpossibilityRunIsTight) {
  // The Theorem 2 construction realizes equality: k roots, min-k = k.
  for (int k = 2; k <= 4; ++k) {
    const PredicateProfile profile =
        profile_skeleton(impossibility_graph(7, k));
    EXPECT_EQ(profile.root_components, k);
    EXPECT_EQ(profile.min_k, k);
    EXPECT_TRUE(profile.theorem1_consistent);
  }
}

}  // namespace
}  // namespace sskel
