// Work-stealing determinism (DESIGN.md §12): the Monte-Carlo pool
// hands out trials through Chase-Lev deques, so which worker runs
// which trial varies run to run — but results are keyed by trial
// index and folded in trial order, so every aggregate must be
// bit-identical for every thread count. Pinned here over a
// network-backed scenario (the ring message plane under the pool),
// complementing the random-Psrcs pin in montecarlo_test.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mc/montecarlo.hpp"
#include "mc/scenario.hpp"

namespace sskel {
namespace {

NetScenario flaky_hub_scenario(ProcId n) {
  // A timely hub over a flaky remainder: trials see real lates and
  // losses, so the network accumulators carry signal worth pinning.
  Digraph stable(n);
  stable.add_self_loops();
  for (ProcId p = 0; p < n; ++p) stable.add_edge(0, p);
  LinkMatrix links = LinkMatrix::all_flaky(n, 0.6);
  links.upgrade_to_timely(stable, 100, 700);
  NetConfig net;
  net.round_duration = 1000;
  for (ProcId p = 0; p < n; ++p) {
    net.skews.push_back((static_cast<SimTime>(p) * 113) % 800);
  }
  return NetScenario(std::move(links), net);
}

TEST(StealDeterminismTest, NetTrialsIdenticalAcrossThreadCounts) {
  const NetScenario scenario = flaky_hub_scenario(6);
  KSetRunConfig config;
  config.k = 2;
  config.max_rounds = 40;

  const McSummary a = run_scenario_trials(scenario, 0x57EA1, 16, config, 1);
  const McSummary b = run_scenario_trials(scenario, 0x57EA1, 16, config, 4);

  ASSERT_TRUE(a.net_backed);
  ASSERT_TRUE(b.net_backed);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.undecided_runs, b.undecided_runs);
  EXPECT_EQ(a.agreement_violations, b.agreement_violations);
  EXPECT_DOUBLE_EQ(a.distinct_values.mean(), b.distinct_values.mean());
  EXPECT_DOUBLE_EQ(a.last_decision_round.mean(),
                   b.last_decision_round.mean());
  EXPECT_DOUBLE_EQ(a.total_messages.sum(), b.total_messages.sum());
  EXPECT_DOUBLE_EQ(a.late_messages.sum(), b.late_messages.sum());
  EXPECT_DOUBLE_EQ(a.lost_messages.sum(), b.lost_messages.sum());
  EXPECT_DOUBLE_EQ(a.wall_clock_ms.sum(), b.wall_clock_ms.sum());
  EXPECT_EQ(a.distinct_histogram.to_string(),
            b.distinct_histogram.to_string());
  EXPECT_EQ(a.root_histogram.to_string(), b.root_histogram.to_string());
}

TEST(StealDeterminismTest, PerTrialCallbackRunsInTrialOrder) {
  // The per-trial hook fires after the parallel phase, in trial order,
  // regardless of which worker ran which trial.
  const NetScenario scenario = flaky_hub_scenario(5);
  KSetRunConfig config;
  config.k = 2;
  config.max_rounds = 40;

  std::vector<std::size_t> order;
  std::vector<std::int64_t> messages;
  const McSummary s = run_scenario_trials(
      scenario, 0x57EA2, 10, config, 4,
      [&](std::size_t trial, const ScenarioTrial& t) {
        order.push_back(trial);
        messages.push_back(t.kset.total_messages);
      });
  EXPECT_EQ(s.runs, 10);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }

  // And the per-trial stream itself is thread-count independent.
  std::vector<std::int64_t> messages_single;
  (void)run_scenario_trials(
      scenario, 0x57EA2, 10, config, 1,
      [&](std::size_t, const ScenarioTrial& t) {
        messages_single.push_back(t.kset.total_messages);
      });
  EXPECT_EQ(messages, messages_single);
}

}  // namespace
}  // namespace sskel
