// The scheduler-equivalence tripwire for Monte-Carlo on the tile
// plane (DESIGN.md §13), extending the PR 7 plane-equivalence
// pattern: the same (scenario, master seed, trials, config) must
// produce bit-identical trial-derived McSummary fields on the
// fork-join pool scheduler and on the tile-plane scheduler, across
// tile counts {1, 2, 4}, and under a tiny-ring backpressure
// configuration. Only service-level fields — intern/arena/peak
// counters and scheduler provenance — may differ. Also covers the
// engine-scratch reuse contract (run_trial with scratch == without)
// and the SSKEL_THREADS tile-count cap.
#include "mc/mc_plane.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "mc/montecarlo.hpp"
#include "mc/parallel_for.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

void expect_accumulators_equal(const Accumulator& a, const Accumulator& b,
                               const char* field) {
  EXPECT_EQ(a.count(), b.count()) << field;
  EXPECT_EQ(a.sum(), b.sum()) << field;
  EXPECT_EQ(a.mean(), b.mean()) << field;
  EXPECT_EQ(a.min(), b.min()) << field;
  EXPECT_EQ(a.max(), b.max()) << field;
}

/// Bit-equality over every trial-derived field. Service-level fields
/// (intern stats, shard counts, ProcSet peak/live/arena accounting,
/// scheduler/tiles/placement/failed_pins) are deliberately excluded:
/// they describe the machinery, not the trials.
void expect_summaries_equal(const McSummary& a, const McSummary& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.undecided_runs, b.undecided_runs);
  EXPECT_EQ(a.agreement_violations, b.agreement_violations);
  EXPECT_EQ(a.validity_violations, b.validity_violations);
  EXPECT_EQ(a.bound_violations, b.bound_violations);
  EXPECT_EQ(a.lemma_violation_runs, b.lemma_violation_runs);
  expect_accumulators_equal(a.distinct_values, b.distinct_values,
                            "distinct_values");
  expect_accumulators_equal(a.root_components, b.root_components,
                            "root_components");
  expect_accumulators_equal(a.last_decision_round, b.last_decision_round,
                            "last_decision_round");
  expect_accumulators_equal(a.stabilization_round, b.stabilization_round,
                            "stabilization_round");
  expect_accumulators_equal(a.total_messages, b.total_messages,
                            "total_messages");
  EXPECT_EQ(a.bytes_measured, b.bytes_measured);
  expect_accumulators_equal(a.total_bytes, b.total_bytes, "total_bytes");
  expect_accumulators_equal(a.max_message_bytes, b.max_message_bytes,
                            "max_message_bytes");
  EXPECT_EQ(a.distinct_histogram.to_string(), b.distinct_histogram.to_string());
  EXPECT_EQ(a.root_histogram.to_string(), b.root_histogram.to_string());
  EXPECT_EQ(a.net_backed, b.net_backed);
  expect_accumulators_equal(a.late_messages, b.late_messages,
                            "late_messages");
  expect_accumulators_equal(a.lost_messages, b.lost_messages,
                            "lost_messages");
  expect_accumulators_equal(a.wall_clock_ms, b.wall_clock_ms,
                            "wall_clock_ms");
  EXPECT_EQ(a.credit_stalls, b.credit_stalls);
}

PartitionScenario make_partition_scenario(ProcId n) {
  PartitionParams params;
  params.blocks = even_blocks(n, 2);
  params.cross_noise_probability = 0.15;
  params.stabilization_round = 4;
  return PartitionScenario(params);
}

KSetRunConfig base_config() {
  KSetRunConfig config;
  config.k = 2;
  config.tail_rounds = 2;
  return config;
}

constexpr std::uint64_t kSeed = 0xC0FFEE5EED;

TEST(McTilePlane, PoolVsTilePlaneBitIdentical) {
  const PartitionScenario scenario = make_partition_scenario(10);
  const KSetRunConfig config = base_config();
  const int trials = 24;

  const McSummary pool =
      run_scenario_trials(scenario, kSeed, trials, config, /*threads=*/2);
  McPlaneOptions options;
  options.tiles = 2;
  McTilePlane plane(scenario, options);
  const McSummary tiled = plane.run(kSeed, trials, config);

  expect_summaries_equal(pool, tiled);
  EXPECT_EQ(pool.scheduler, "pool");
  EXPECT_EQ(tiled.scheduler, "tile-plane");
  EXPECT_EQ(tiled.tiles, 2);
  EXPECT_EQ(plane.trials_executed(), trials);
}

TEST(McTilePlane, BitIdenticalAcrossTileCounts) {
  const PartitionScenario scenario = make_partition_scenario(8);
  const KSetRunConfig config = base_config();
  const int trials = 20;

  std::vector<McSummary> runs;
  for (unsigned tiles : {1u, 2u, 4u}) {
    McPlaneOptions options;
    options.tiles = tiles;
    McTilePlane plane(scenario, options);
    runs.push_back(plane.run(kSeed, trials, config));
    EXPECT_EQ(runs.back().tiles, static_cast<std::int64_t>(tiles));
  }
  expect_summaries_equal(runs[0], runs[1]);
  expect_summaries_equal(runs[0], runs[2]);
}

TEST(McTilePlane, TinyRingBackpressureBitIdentical) {
  // Depth-2 rings against 48 trials on 3 tiles: the dispatcher and
  // tiles must ride the credit gates without reordering or dropping a
  // trial. Results stay equal to the reference scheduler.
  const PartitionScenario scenario = make_partition_scenario(8);
  const KSetRunConfig config = base_config();
  const int trials = 48;

  const McSummary pool =
      run_scenario_trials(scenario, kSeed, trials, config, /*threads=*/1);
  McPlaneOptions options;
  options.tiles = 3;
  options.ring_depth = 2;
  options.lazy = 1;
  McTilePlane plane(scenario, options);
  const McSummary tiled = plane.run(kSeed, trials, config);
  expect_summaries_equal(pool, tiled);
}

TEST(McTilePlane, PersistentServiceReusesInternAcrossBatches) {
  // The point of the persistent service: batch 2 of the same scenario
  // resolves structures against the shards batch 1 populated — entry
  // count stops growing while hits keep climbing. Trial-derived
  // fields stay bit-identical (same seeds).
  const PartitionScenario scenario = make_partition_scenario(10);
  const KSetRunConfig config = base_config();
  McPlaneOptions options;
  options.tiles = 2;
  McTilePlane plane(scenario, options);

  const McSummary first = plane.run(kSeed, 16, config);
  const McSummary second = plane.run(kSeed, 16, config);
  expect_summaries_equal(first, second);
  // Cumulative service-level counters: no new structures in batch 2...
  EXPECT_EQ(second.intern.entries, first.intern.entries);
  // ...while resolutions kept landing as hits.
  EXPECT_GT(second.intern.hits, first.intern.hits);
  EXPECT_EQ(plane.trials_executed(), 32);
}

TEST(McTilePlane, ScratchReuseMatchesScratchFreeTrials) {
  // The ScenarioFactory scratch contract, scenario by scenario: a
  // reused engine must replay a trial bit-identically to a fresh one.
  const KSetRunConfig config = base_config();
  const PartitionScenario partition = make_partition_scenario(8);
  const CrashScenario crash(9, 2, 4);
  const RotatingScenario rotating(7);
  RandomPsrcsParams params;
  params.n = 9;
  params.k = 3;
  const RandomPsrcsScenario random_psrcs(params);

  const ScenarioFactory* scenarios[] = {&partition, &crash, &rotating,
                                        &random_psrcs};
  for (const ScenarioFactory* scenario : scenarios) {
    const std::unique_ptr<ScenarioFactory::Scratch> scratch =
        scenario->make_scratch();
    ASSERT_NE(scratch, nullptr) << scenario->name();
    for (std::uint64_t seed : {7u, 19u, 7u, 23u}) {  // includes a repeat
      const ScenarioTrial fresh = scenario->run_trial(seed, config);
      const ScenarioTrial reused =
          scenario->run_trial(seed, config, scratch.get());
      const KSetRunReport& a = fresh.kset;
      const KSetRunReport& b = reused.kset;
      EXPECT_EQ(a.n, b.n) << scenario->name();
      ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << scenario->name();
      for (std::size_t p = 0; p < a.outcomes.size(); ++p) {
        EXPECT_EQ(a.outcomes[p].decided, b.outcomes[p].decided)
            << scenario->name() << " p=" << p;
        EXPECT_EQ(a.outcomes[p].decision, b.outcomes[p].decision)
            << scenario->name() << " p=" << p;
        EXPECT_EQ(a.outcomes[p].decision_round, b.outcomes[p].decision_round)
            << scenario->name() << " p=" << p;
      }
      EXPECT_EQ(a.paths, b.paths) << scenario->name();
      EXPECT_EQ(a.rounds_executed, b.rounds_executed) << scenario->name();
      EXPECT_EQ(a.final_skeleton, b.final_skeleton) << scenario->name();
      EXPECT_EQ(a.skeleton_last_change, b.skeleton_last_change)
          << scenario->name();
      EXPECT_EQ(a.root_components_final, b.root_components_final)
          << scenario->name();
      EXPECT_EQ(a.total_messages, b.total_messages) << scenario->name();
    }
  }
}

TEST(McTilePlane, RunScenarioTrialsOnDispatchesBothSchedulers) {
  const PartitionScenario scenario = make_partition_scenario(8);
  const KSetRunConfig config = base_config();
  McPlaneOptions options;
  options.tiles = 2;
  const McSummary pool = run_scenario_trials_on(
      McScheduler::kPool, scenario, kSeed, 12, config, options);
  const McSummary tiled = run_scenario_trials_on(
      McScheduler::kTilePlane, scenario, kSeed, 12, config, options);
  EXPECT_EQ(pool.scheduler, "pool");
  EXPECT_EQ(tiled.scheduler, "tile-plane");
  expect_summaries_equal(pool, tiled);
}

TEST(McTilePlaneStream, ManualStreamFoldMatchesBatchRun) {
  // The streaming API is the batch API unrolled: offering the same
  // seeds through stream_begin/offer/flush and left-folding in the
  // sink must reproduce run()'s trial-derived fields bit-for-bit,
  // even with a window far smaller than the trial count.
  const PartitionScenario scenario = make_partition_scenario(8);
  const KSetRunConfig config = base_config();
  const int trials = 30;

  McTilePlane batch_plane(scenario, McPlaneOptions{});
  const McSummary batch = batch_plane.run(kSeed, trials, config);

  McTilePlane plane(scenario, McPlaneOptions{});
  McSummary streamed;
  streamed.scenario = scenario.name();
  streamed.bytes_measured = config.measure_bytes;
  std::uint64_t delivered = 0;
  const McTilePlane::StreamSink sink =
      [&](std::uint64_t index, const ScenarioTrial& trial,
          std::int64_t elapsed_ns) {
        EXPECT_EQ(index, delivered);  // contiguous, in trial order
        EXPECT_GE(elapsed_ns, 0);
        fold_scenario_trial(streamed, trial, config);
        ++delivered;
      };
  plane.stream_begin(config, /*window=*/4);
  for (std::uint64_t t = 0; t < static_cast<std::uint64_t>(trials);) {
    if (plane.stream_offer(t, mix_seed(kSeed, t))) {
      ++t;
    } else {
      EXPECT_LE(plane.stream_in_flight(), 4);  // window bounds in-flight
      (void)plane.stream_collect(sink);
    }
  }
  plane.stream_flush(sink);
  EXPECT_EQ(plane.stream_in_flight(), 0);
  plane.stream_end();

  EXPECT_EQ(delivered, static_cast<std::uint64_t>(trials));
  expect_summaries_equal(batch, streamed);
}

TEST(McTilePlaneStream, AbortDiscardsInFlightAndPlaneStaysUsable) {
  const PartitionScenario scenario = make_partition_scenario(8);
  const KSetRunConfig config = base_config();

  McTilePlane plane(scenario, McPlaneOptions{});
  plane.stream_begin(config, /*window=*/8);
  std::uint64_t offered = 0;
  while (offered < 6 && plane.stream_offer(offered, mix_seed(kSeed, offered))) {
    ++offered;
  }
  EXPECT_GT(offered, 0u);
  plane.stream_abort();  // the crash path: drain, deliver nothing
  EXPECT_EQ(plane.stream_in_flight(), 0);
  plane.stream_end();

  // The aborted stream leaves no residue: a batch run on the same
  // plane still matches a fresh plane bit-for-bit.
  const McSummary after = plane.run(kSeed, 12, config);
  McTilePlane fresh(scenario, McPlaneOptions{});
  expect_summaries_equal(fresh.run(kSeed, 12, config), after);
}

TEST(McTilePlaneStream, FirstIndexOffsetResumesMidSequence) {
  // Resume semantics: a stream opened at first_index folds the same
  // trials [first, total) that the tail of a full batch folds.
  const PartitionScenario scenario = make_partition_scenario(8);
  const KSetRunConfig config = base_config();
  const std::uint64_t first = 7;
  const std::uint64_t total = 19;

  McTilePlane plane(scenario, McPlaneOptions{});
  McSummary tail;
  tail.scenario = scenario.name();
  tail.bytes_measured = config.measure_bytes;
  const McTilePlane::StreamSink sink =
      [&](std::uint64_t, const ScenarioTrial& trial, std::int64_t) {
        fold_scenario_trial(tail, trial, config);
      };
  plane.stream_begin(config, /*window=*/4, first);
  for (std::uint64_t t = first; t < total;) {
    if (plane.stream_offer(t, mix_seed(kSeed, t))) {
      ++t;
    } else {
      (void)plane.stream_collect(sink);
    }
  }
  plane.stream_flush(sink);
  plane.stream_end();

  McSummary expected;
  expected.scenario = scenario.name();
  expected.bytes_measured = config.measure_bytes;
  for (std::uint64_t t = first; t < total; ++t) {
    fold_scenario_trial(expected, scenario.run_trial(mix_seed(kSeed, t), config),
                        config);
  }
  expect_summaries_equal(expected, tail);
}

TEST(McTilePlaneEnv, TilesFromEnvValuePureCases) {
  // requested == 0: behaves exactly like the worker-pool resolution
  // (hardware-clamped default).
  EXPECT_EQ(tiles_from_env_value(0, nullptr, 8), 8u);
  EXPECT_EQ(tiles_from_env_value(0, "3", 8), 3u);
  EXPECT_EQ(tiles_from_env_value(0, "12", 8), 8u);  // clamped to hw
  // Explicit request: capped by the env, never hardware-clamped.
  EXPECT_EQ(tiles_from_env_value(4, nullptr, 1), 4u);
  EXPECT_EQ(tiles_from_env_value(4, "", 1), 4u);
  EXPECT_EQ(tiles_from_env_value(4, "2", 1), 2u);
  EXPECT_EQ(tiles_from_env_value(4, "99", 1), 4u);
  EXPECT_EQ(tiles_from_env_value(4, "4", 1), 4u);
  // Garbage / non-positive env values leave the request alone.
  EXPECT_EQ(tiles_from_env_value(4, "abc", 1), 4u);
  EXPECT_EQ(tiles_from_env_value(4, "2x", 1), 4u);
  EXPECT_EQ(tiles_from_env_value(4, "0", 1), 4u);
  EXPECT_EQ(tiles_from_env_value(4, "-3", 1), 4u);
  EXPECT_EQ(tiles_from_env_value(4, "2 ", 1), 2u);  // trailing space ok
}

TEST(McTilePlaneEnv, SskelThreadsCapsTileCount) {
  // The live-env path: SSKEL_THREADS=1 must cap an explicit 4-tile
  // request down to 1 (single concurrency knob).
  ASSERT_EQ(setenv("SSKEL_THREADS", "1", 1), 0);
  EXPECT_EQ(resolve_tile_count(4), 1u);
  const PartitionScenario scenario = make_partition_scenario(8);
  McPlaneOptions options;
  options.tiles = 4;
  McTilePlane plane(scenario, options);
  EXPECT_EQ(plane.tiles(), 1u);
  ASSERT_EQ(unsetenv("SSKEL_THREADS"), 0);
  EXPECT_EQ(resolve_tile_count(4), 4u);
}

}  // namespace
}  // namespace sskel
