// Tests for the Monte-Carlo aggregation driver.
#include "mc/montecarlo.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

TEST(MonteCarloTest, AggregatesCleanTrials) {
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 2;
  params.root_components = 2;
  KSetRunConfig config;
  config.k = 2;
  const McSummary s = run_random_psrcs_trials(123, 20, params, config, 2);
  EXPECT_EQ(s.runs, 20);
  EXPECT_EQ(s.undecided_runs, 0);
  EXPECT_EQ(s.agreement_violations, 0);
  EXPECT_EQ(s.validity_violations, 0);
  EXPECT_EQ(s.bound_violations, 0);
  EXPECT_EQ(s.distinct_values.count(), 20);
  EXPECT_LE(s.distinct_values.max(), 2.0);       // k-agreement
  EXPECT_LE(s.root_components.max(), 2.0);       // Theorem 1
  EXPECT_GE(s.root_components.min(), 1.0);
  EXPECT_EQ(s.distinct_histogram.total(), 20);
}

TEST(MonteCarloTest, DeterministicAcrossThreadCounts) {
  RandomPsrcsParams params;
  params.n = 5;
  params.k = 2;
  params.root_components = 2;
  KSetRunConfig config;
  config.k = 2;
  const McSummary a = run_random_psrcs_trials(77, 12, params, config, 1);
  const McSummary b = run_random_psrcs_trials(77, 12, params, config, 4);
  EXPECT_DOUBLE_EQ(a.distinct_values.mean(), b.distinct_values.mean());
  EXPECT_DOUBLE_EQ(a.last_decision_round.mean(), b.last_decision_round.mean());
  EXPECT_DOUBLE_EQ(a.total_messages.sum(), b.total_messages.sum());
  EXPECT_EQ(a.distinct_histogram.to_string(), b.distinct_histogram.to_string());
}

TEST(MonteCarloTest, ZeroTrials) {
  RandomPsrcsParams params;
  KSetRunConfig config;
  const McSummary s = run_random_psrcs_trials(1, 0, params, config);
  EXPECT_EQ(s.runs, 0);
}

}  // namespace
}  // namespace sskel
