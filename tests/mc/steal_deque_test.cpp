// Tests for the Chase-Lev work-stealing deque: owner LIFO / thief
// FIFO order, the fixed-capacity push bound, and a multithreaded
// owner-vs-thieves run asserting every item is claimed exactly once.
#include "mc/steal_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace sskel {
namespace {

TEST(StealDequeTest, CapacityRoundsUpToPowerOfTwoMinOne) {
  EXPECT_EQ(StealDeque(0).capacity(), 1u);
  EXPECT_EQ(StealDeque(1).capacity(), 1u);
  EXPECT_EQ(StealDeque(5).capacity(), 8u);
  EXPECT_EQ(StealDeque(8).capacity(), 8u);
}

TEST(StealDequeTest, OwnerPopsLifoThiefStealsFifo) {
  StealDeque deque(8);
  for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(deque.push(10 + i));
  EXPECT_EQ(deque.size(), 4u);

  std::size_t item = 0;
  // Owner pops the bottom: most recent first.
  ASSERT_TRUE(deque.pop(item));
  EXPECT_EQ(item, 13u);
  // Thief steals the top: oldest first.
  ASSERT_EQ(deque.steal(item), StealResult::kStole);
  EXPECT_EQ(item, 10u);
  ASSERT_EQ(deque.steal(item), StealResult::kStole);
  EXPECT_EQ(item, 11u);
  ASSERT_TRUE(deque.pop(item));
  EXPECT_EQ(item, 12u);

  EXPECT_FALSE(deque.pop(item));
  EXPECT_EQ(deque.steal(item), StealResult::kEmpty);
}

TEST(StealDequeTest, PushRefusesToGrowPastCapacity) {
  StealDeque deque(4);
  for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(deque.push(i));
  EXPECT_FALSE(deque.push(99));
  // Freeing one slot re-enables exactly one push.
  std::size_t item = 0;
  ASSERT_EQ(deque.steal(item), StealResult::kStole);
  EXPECT_TRUE(deque.push(99));
  EXPECT_FALSE(deque.push(100));
}

TEST(StealDequeTest, StealFromEmptyAndPopFromEmpty) {
  StealDeque deque(4);
  std::size_t item = 0;
  EXPECT_EQ(deque.steal(item), StealResult::kEmpty);
  EXPECT_FALSE(deque.pop(item));
  // The empty-pop protocol must leave the deque usable.
  ASSERT_TRUE(deque.push(7));
  ASSERT_TRUE(deque.pop(item));
  EXPECT_EQ(item, 7u);
}

TEST(StealDequeTest, OwnerAndThievesClaimEachItemExactlyOnce) {
  // The pool's actual shape: items prepopulated, then the owner pops
  // while thieves steal. Every item must be claimed exactly once
  // across all participants.
  const std::size_t items = 4096;
  const int thieves = 3;
  StealDeque deque(items);
  for (std::size_t i = 0; i < items; ++i) ASSERT_TRUE(deque.push(i));

  std::vector<std::atomic<int>> claims(items);
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> claimed{0};

  auto thief = [&] {
    std::size_t item = 0;
    while (claimed.load(std::memory_order_relaxed) < items) {
      switch (deque.steal(item)) {
        case StealResult::kStole:
          claims[item].fetch_add(1, std::memory_order_relaxed);
          claimed.fetch_add(1, std::memory_order_relaxed);
          break;
        case StealResult::kEmpty:
        case StealResult::kContended:
          break;  // retry until the global count says we're done
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(thieves));
  for (int t = 0; t < thieves; ++t) pool.emplace_back(thief);

  std::size_t item = 0;
  while (deque.pop(item)) {
    claims[item].fetch_add(1, std::memory_order_relaxed);
    claimed.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(claimed.load(), items);
  for (std::size_t i = 0; i < items; ++i) {
    EXPECT_EQ(claims[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace sskel
