// Tests for the parallel fan-out helper.
#include "mc/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace sskel {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // inline, in order
}

TEST(ParallelForTest, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(CollectParallelTest, ResultsIndexOrdered) {
  const std::vector<int> out = collect_parallel<int>(
      50, [](std::size_t i) { return static_cast<int>(i * i); }, 4);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(CollectParallelTest, DeterministicAcrossThreadCounts) {
  auto fn = [](std::size_t i) { return static_cast<int>(7 * i + 1); };
  const auto a = collect_parallel<int>(64, fn, 1);
  const auto b = collect_parallel<int>(64, fn, 8);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sskel
