// Tests for the parallel fan-out helper.
#include "mc/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace sskel {
namespace {

/// Sets SSKEL_THREADS for the test's lifetime and restores the prior
/// value (or unsets) on destruction.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* prev = std::getenv("SSKEL_THREADS");
    if (prev != nullptr) saved_ = prev;
    had_prev_ = prev != nullptr;
    ::setenv("SSKEL_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_prev_) {
      ::setenv("SSKEL_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("SSKEL_THREADS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string saved_;
};

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // inline, in order
}

TEST(ParallelForTest, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ParallelForTest, ThreadsFromEnvValueParsesAndClamps) {
  // In range: taken as-is.
  EXPECT_EQ(threads_from_env_value("4", 16), 4u);
  EXPECT_EQ(threads_from_env_value("1", 16), 1u);
  EXPECT_EQ(threads_from_env_value("16", 16), 16u);
  // Above hardware: clamped down.
  EXPECT_EQ(threads_from_env_value("64", 8), 8u);
  // Trailing whitespace is fine; trailing garbage is not.
  EXPECT_EQ(threads_from_env_value("4 ", 16), 4u);
  EXPECT_EQ(threads_from_env_value("4x", 16), 16u);
  // Unset, empty, zero, negative, junk: fall back to hardware.
  EXPECT_EQ(threads_from_env_value(nullptr, 12), 12u);
  EXPECT_EQ(threads_from_env_value("", 12), 12u);
  EXPECT_EQ(threads_from_env_value("0", 12), 12u);
  EXPECT_EQ(threads_from_env_value("-3", 12), 12u);
  EXPECT_EQ(threads_from_env_value("lots", 12), 12u);
  // A zero hardware report (the standard allows it) still yields >= 1.
  EXPECT_EQ(threads_from_env_value("4", 0), 1u);
}

TEST(ParallelForTest, EnvVariableCapsResolvedThreads) {
  ScopedThreadsEnv env("1");
  EXPECT_EQ(resolve_thread_count(0), 1u);
  // Explicit requests bypass the environment entirely.
  EXPECT_EQ(resolve_thread_count(5), 5u);
}

TEST(ParallelForTest, EnvSingleThreadRunsInlineIncludingNested) {
  // SSKEL_THREADS=1 must force the inline path: indices execute in
  // order on the calling thread, nested calls included, with no pool
  // job dispatched.
  ScopedThreadsEnv env("1");
  const std::int64_t jobs_before =
      detail::WorkerPool::instance().jobs_dispatched();
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  parallel_for(3, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    parallel_for(2, [&](std::size_t j) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(static_cast<int>(i * 2 + j));
    });
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(detail::WorkerPool::instance().jobs_dispatched(), jobs_before);
}

TEST(ParallelForTest, PoolSizeCountsParticipants) {
  using detail::WorkerPool;
  // Before any helpers exist size() reports the resolve target; after
  // a pool job it is exactly helpers + the submitting thread.
  EXPECT_GE(WorkerPool::instance().size(), 1u);
  parallel_for(64, [](std::size_t) {}, 4);  // ensure helpers spawned
  EXPECT_EQ(WorkerPool::instance().size(),
            WorkerPool::instance().helper_count() + 1);
}

TEST(ParallelForTest, MoveOnlyCallableUsesTemplatedOverload) {
  // A move-only lambda cannot form a std::function, so this only
  // compiles through the templated (allocation-free) overload.
  std::atomic<int> hits{0};
  auto token = std::make_unique<int>(7);
  auto fn = [&hits, t = std::move(token)](std::size_t) { hits += *t; };
  parallel_for(32, fn, 4);
  EXPECT_EQ(hits.load(), 32 * 7);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  // A job body that itself calls parallel_for must not deadlock
  // against the pool it is running on; nested calls execute inline.
  std::atomic<int> hits{0};
  parallel_for(
      4,
      [&](std::size_t) {
        parallel_for(8, [&](std::size_t) { ++hits; }, 4);
      },
      4);
  EXPECT_EQ(hits.load(), 32);
}

TEST(ParallelForTest, StdFunctionOverloadStillWorks) {
  std::atomic<int> hits{0};
  const std::function<void(std::size_t)> fn = [&](std::size_t) { ++hits; };
  parallel_for(20, fn, 2);
  EXPECT_EQ(hits.load(), 20);
}

TEST(ParallelForTest, PoolIsReusedAcrossCalls) {
  // Requesting 4 workers engages the pool regardless of the machine's
  // core count (on a single-core host it simply has zero helpers and
  // the caller does all the work).
  using detail::WorkerPool;
  parallel_for(64, [](std::size_t) {}, 4);  // warm the pool
  const unsigned helpers = WorkerPool::instance().helper_count();
  const std::int64_t before = WorkerPool::instance().jobs_dispatched();
  for (int i = 0; i < 10; ++i) {
    parallel_for(64, [](std::size_t) {}, 4);
  }
  // Same helper threads, ten more jobs: the pool is persistent, not
  // re-spawned per call.
  EXPECT_EQ(WorkerPool::instance().helper_count(), helpers);
  EXPECT_EQ(WorkerPool::instance().jobs_dispatched(), before + 10);
}

TEST(CollectParallelTest, ResultsIndexOrdered) {
  const std::vector<int> out = collect_parallel<int>(
      50, [](std::size_t i) { return static_cast<int>(i * i); }, 4);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(CollectParallelTest, DeterministicAcrossThreadCounts) {
  auto fn = [](std::size_t i) { return static_cast<int>(7 * i + 1); };
  const auto a = collect_parallel<int>(64, fn, 1);
  const auto b = collect_parallel<int>(64, fn, 8);
  EXPECT_EQ(a, b);
}

TEST(CollectParallelTest, StdFunctionOverloadStillWorks) {
  const std::function<int(std::size_t)> fn = [](std::size_t i) {
    return static_cast<int>(i) + 1;
  };
  const auto out = collect_parallel<int>(10, fn, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace sskel
