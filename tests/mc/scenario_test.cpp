// Tests for the scenario-driven Monte-Carlo engine: heterogeneous
// factories (crash, partition, rotating, network-backed) all aggregate
// through the one run_scenario_trials code path, byte accumulators are
// gated on measure_bytes, and the trial hot loop constructs no
// per-round graphs.
#include "mc/scenario.hpp"

#include <gtest/gtest.h>

#include "adversary/random_psrcs.hpp"
#include "mc/montecarlo.hpp"

namespace sskel {
namespace {

TEST(ScenarioTest, CrashScenarioReachesConsensus) {
  // One root component (the never-crashed set) -> consensus, k = 1.
  const CrashScenario scenario(6, /*crashes=*/2, /*max_crash_round=*/3);
  EXPECT_EQ(scenario.name(), "crash");
  EXPECT_EQ(scenario.n(), 6);
  KSetRunConfig config;
  config.k = 1;
  const McSummary s = run_scenario_trials(scenario, 42, 8, config, 2);
  EXPECT_EQ(s.scenario, "crash");
  EXPECT_EQ(s.runs, 8);
  EXPECT_EQ(s.undecided_runs, 0);
  EXPECT_EQ(s.agreement_violations, 0);
  EXPECT_EQ(s.validity_violations, 0);
  EXPECT_FALSE(s.net_backed);
  EXPECT_LE(s.distinct_values.max(), 1.0);
}

TEST(ScenarioTest, PartitionScenarioHonorsBlockCount) {
  PartitionParams params;
  params.blocks = even_blocks(8, 2);
  params.cross_noise_probability = 0.3;
  params.stabilization_round = 3;
  const PartitionScenario scenario(params);
  EXPECT_EQ(scenario.n(), 8);
  KSetRunConfig config;
  config.k = 2;
  const McSummary s = run_scenario_trials(scenario, 7, 6, config, 2);
  EXPECT_EQ(s.runs, 6);
  EXPECT_EQ(s.undecided_runs, 0);
  EXPECT_EQ(s.agreement_violations, 0);
  // Two complete blocks: exactly 2 root components in every trial.
  EXPECT_DOUBLE_EQ(s.root_components.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.root_components.max(), 2.0);
}

TEST(ScenarioTest, NetScenarioIsNetBacked) {
  NetConfig net;
  net.round_duration = 1000;
  const NetScenario scenario(LinkMatrix::all_timely(5, 100, 800), net);
  EXPECT_EQ(scenario.name(), "net");
  KSetRunConfig config;
  config.k = 1;
  const McSummary s = run_scenario_trials(scenario, 11, 4, config, 2);
  EXPECT_EQ(s.runs, 4);
  EXPECT_TRUE(s.net_backed);
  EXPECT_EQ(s.undecided_runs, 0);
  EXPECT_EQ(s.agreement_violations, 0);
  EXPECT_LE(s.distinct_values.max(), 1.0);  // all-timely -> consensus
  EXPECT_EQ(s.late_messages.count(), 4);
  EXPECT_GT(s.wall_clock_ms.min(), 0.0);
}

TEST(ScenarioTest, RotatingScenarioStaysValid) {
  // Psrcs fails by design (the negative control): agreement may
  // degrade, but validity is predicate-free and must hold.
  const RotatingScenario scenario(5);
  EXPECT_EQ(scenario.name(), "rotating-star");
  KSetRunConfig config;
  config.k = 1;
  const McSummary s = run_scenario_trials(scenario, 3, 6, config, 2);
  EXPECT_EQ(s.runs, 6);
  EXPECT_EQ(s.validity_violations, 0);
  EXPECT_EQ(s.undecided_runs, 0);
}

TEST(ScenarioTest, PerTrialCallbackRunsInTrialOrder) {
  const CrashScenario scenario(5, 1, 2);
  KSetRunConfig config;
  config.k = 1;
  std::vector<std::size_t> indices;
  const McSummary s = run_scenario_trials(
      scenario, 9, 5, config, 2,
      [&](std::size_t t, const ScenarioTrial& trial) {
        indices.push_back(t);
        EXPECT_FALSE(trial.net_backed);
        EXPECT_TRUE(trial.kset.all_decided);
      });
  EXPECT_EQ(s.runs, 5);
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ScenarioTest, ByteAccumulatorsGatedOnMeasureBytes) {
  RandomPsrcsParams params;
  params.n = 5;
  params.k = 2;
  params.root_components = 2;
  const RandomPsrcsScenario scenario(params);

  KSetRunConfig off;
  off.k = 2;
  const McSummary without = run_scenario_trials(scenario, 5, 4, off, 1);
  EXPECT_FALSE(without.bytes_measured);
  EXPECT_EQ(without.total_bytes.count(), 0);
  EXPECT_EQ(without.max_message_bytes.count(), 0);

  KSetRunConfig on = off;
  on.measure_bytes = true;
  const McSummary with = run_scenario_trials(scenario, 5, 4, on, 1);
  EXPECT_TRUE(with.bytes_measured);
  EXPECT_EQ(with.total_bytes.count(), 4);
  EXPECT_GT(with.total_bytes.min(), 0.0);
  EXPECT_GT(with.max_message_bytes.min(), 0.0);
}

TEST(ScenarioTest, DeterministicAcrossThreadCounts) {
  PartitionParams params;
  params.blocks = even_blocks(6, 2);
  params.cross_noise_probability = 0.4;
  params.stabilization_round = 4;
  const PartitionScenario scenario(params);
  KSetRunConfig config;
  config.k = 2;
  const McSummary a = run_scenario_trials(scenario, 21, 10, config, 1);
  const McSummary b = run_scenario_trials(scenario, 21, 10, config, 4);
  EXPECT_DOUBLE_EQ(a.distinct_values.mean(), b.distinct_values.mean());
  EXPECT_DOUBLE_EQ(a.last_decision_round.mean(), b.last_decision_round.mean());
  EXPECT_DOUBLE_EQ(a.total_messages.sum(), b.total_messages.sum());
  EXPECT_EQ(a.root_histogram.to_string(), b.root_histogram.to_string());
}

TEST(ScenarioTest, LegacyEntryPointMatchesScenarioEngine) {
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 2;
  params.root_components = 2;
  KSetRunConfig config;
  config.k = 2;
  const McSummary legacy = run_random_psrcs_trials(123, 8, params, config, 2);
  const RandomPsrcsScenario scenario(params);
  const McSummary direct = run_scenario_trials(scenario, 123, 8, config, 2);
  EXPECT_DOUBLE_EQ(legacy.distinct_values.mean(),
                   direct.distinct_values.mean());
  EXPECT_DOUBLE_EQ(legacy.total_messages.sum(), direct.total_messages.sum());
  EXPECT_EQ(legacy.root_histogram.to_string(),
            direct.root_histogram.to_string());
}

TEST(ScenarioTest, TrialHotLoopConstructsNoPerRoundGraphs) {
  // Two runs of the same trial, differing only in how many rounds they
  // execute (tail_rounds 4 vs 40): if the per-round path constructed
  // any Digraph, the longer run would construct strictly more. Equal
  // construction deltas prove the hot loop is allocation-free.
  RandomPsrcsParams params;
  params.n = 8;
  params.k = 2;
  params.root_components = 2;
  params.noise_probability = 0.3;

  const auto constructions_for = [&](Round tail) {
    RandomPsrcsSource source(99, params);
    KSetRunConfig config;
    config.k = 2;
    config.tail_rounds = tail;
    const std::int64_t before = Digraph::graphs_constructed();
    const KSetRunReport report = run_kset(source, config);
    const std::int64_t delta = Digraph::graphs_constructed() - before;
    EXPECT_TRUE(report.all_decided);
    EXPECT_GE(report.rounds_executed, tail);
    return delta;
  };

  EXPECT_EQ(constructions_for(4), constructions_for(40));
}

}  // namespace
}  // namespace sskel
