// Tests for the tile plane: work fan-out over credit-gated rings,
// result completeness keyed by id (completion order is free), tick
// pacing, and backpressure survival on tiny rings.
#include "net/tile.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sskel {
namespace {

TEST(TickPacerTest, FiresEveryInterval) {
  TickPacer pacer(3);
  int fires = 0;
  for (int i = 0; i < 9; ++i) {
    if (pacer.tick()) ++fires;
  }
  EXPECT_EQ(fires, 3);
}

TEST(TickPacerTest, NonPositiveIntervalClampsToEveryTick) {
  TickPacer pacer(0);
  EXPECT_EQ(pacer.interval(), 1);
  EXPECT_TRUE(pacer.tick());
  EXPECT_TRUE(pacer.tick());
}

/// Deterministic work function: value derives from seed and param
/// only, so any tile computing it gets the same answer.
TileResult square_work(void* /*ctx*/, unsigned /*tile*/,
                       const TileWork& work) {
  TileResult result;
  result.id = work.id;
  result.value = static_cast<std::int64_t>(work.seed * work.seed);
  result.aux = static_cast<std::int64_t>(work.param);
  return result;
}

TEST(TilePlaneTest, RunAllReturnsEveryResultExactlyOnce) {
  const std::size_t items = 64;
  std::vector<TileWork> work;
  for (std::size_t i = 0; i < items; ++i) {
    work.push_back(TileWork{i, i + 1, 2 * i});
  }
  TilePlane plane(/*tiles=*/2, &square_work, nullptr);
  EXPECT_EQ(plane.tiles(), 2u);
  std::vector<TileResult> results;
  plane.run_all(work, results);
  ASSERT_EQ(results.size(), items);

  std::vector<bool> seen(items, false);
  for (const TileResult& r : results) {
    ASSERT_LT(r.id, items);
    EXPECT_FALSE(seen[static_cast<std::size_t>(r.id)]) << "duplicate result";
    seen[static_cast<std::size_t>(r.id)] = true;
    const std::int64_t seed = static_cast<std::int64_t>(r.id) + 1;
    EXPECT_EQ(r.value, seed * seed);
    EXPECT_EQ(r.aux, static_cast<std::int64_t>(2 * r.id));
  }
  EXPECT_EQ(plane.frags_processed(), static_cast<std::int64_t>(items));
}

TEST(TilePlaneTest, TinyRingsStillDeliverEverything) {
  // Depth-4 intake/result rings against 256 items: the dispatcher and
  // tiles must ride the credit gates (stall counts are timing
  // dependent — only completeness is asserted).
  const std::size_t items = 256;
  std::vector<TileWork> work;
  for (std::size_t i = 0; i < items; ++i) {
    work.push_back(TileWork{i, i, 0});
  }
  TilePlaneOptions options;
  options.ring_depth = 4;
  options.lazy = 2;
  TilePlane plane(/*tiles=*/3, &square_work, nullptr, options);
  std::vector<TileResult> results;
  plane.run_all(work, results);
  ASSERT_EQ(results.size(), items);
  std::int64_t sum = 0;
  for (const TileResult& r : results) sum += r.value;
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < items; ++i) {
    expected += static_cast<std::int64_t>(i * i);
  }
  EXPECT_EQ(sum, expected);
  EXPECT_GE(plane.submit_stalls(), 0);
  EXPECT_GE(plane.result_stalls(), 0);
}

TEST(TilePlaneTest, SubmitAndDrainIncrementally) {
  TilePlane plane(/*tiles=*/1, &square_work, nullptr);
  std::vector<TileResult> results;
  for (std::size_t i = 0; i < 10; ++i) {
    plane.submit(TileWork{i, i, 0});
  }
  while (results.size() < 10) plane.drain(results);
  EXPECT_EQ(results.size(), 10u);
}

/// Echoes the executing tile's index so the dispatch fan is visible.
TileResult tile_index_work(void* /*ctx*/, unsigned tile,
                           const TileWork& work) {
  TileResult result;
  result.id = work.id;
  result.value = static_cast<std::int64_t>(tile);
  result.aux = 0;
  return result;
}

TEST(TilePlaneTest, WorkFnSeesItsTileIndex) {
  // Round-robin submit over 3 tiles: item i must be executed by tile
  // i mod 3 — the index the work function receives is the index the
  // dispatcher sent the work to.
  const unsigned tiles = 3;
  TilePlane plane(tiles, &tile_index_work, nullptr);
  std::vector<TileWork> work;
  for (std::size_t i = 0; i < 30; ++i) work.push_back(TileWork{i, 0, 0});
  std::vector<TileResult> results;
  plane.run_all(work, results);
  ASSERT_EQ(results.size(), work.size());
  for (const TileResult& r : results) {
    EXPECT_EQ(r.value, static_cast<std::int64_t>(r.id % tiles));
  }
}

TEST(TilePlaneTest, PlacementEmptyWhenNotPinning) {
  TilePlane plane(/*tiles=*/2, &square_work, nullptr);
  EXPECT_TRUE(plane.placement().empty());
  EXPECT_EQ(plane.failed_pins(), 0u);
}

TEST(TilePlaneTest, ExplicitCpuPlacementIsCycledAcrossTiles) {
  TilePlaneOptions options;
  options.pin_threads = true;
  options.cpu_placement = {0};  // CPU 0 always exists
  TilePlane plane(/*tiles=*/3, &square_work, nullptr, options);
  ASSERT_EQ(plane.placement().size(), 3u);
  for (int cpu : plane.placement()) EXPECT_EQ(cpu, 0);
  // Pinning to CPU 0 is legal on any host that lets us pin at all, so
  // either every pin landed or the runner forbids affinity entirely.
  std::vector<TileWork> work{{0, 2, 0}, {1, 3, 0}};
  std::vector<TileResult> results;
  plane.run_all(work, results);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_LE(plane.failed_pins(), 3u);
}

TEST(TilePlaneTest, TopologyDerivedPlacementCoversEveryTile) {
  TilePlaneOptions options;
  options.pin_threads = true;  // placement from probe_cpu_topology()
  TilePlane plane(/*tiles=*/4, &square_work, nullptr, options);
  ASSERT_EQ(plane.placement().size(), 4u);
  for (int cpu : plane.placement()) EXPECT_GE(cpu, 0);
  std::vector<TileWork> work;
  for (std::size_t i = 0; i < 16; ++i) work.push_back(TileWork{i, i, 0});
  std::vector<TileResult> results;
  plane.run_all(work, results);
  EXPECT_EQ(results.size(), 16u);
}

}  // namespace
}  // namespace sskel
