// Tests for the frag-ring transport: publish/poll order, wraparound
// across many laps, seq-overrun detection and resync, and the RingMux
// multi-producer merge (per-producer order preservation).
#include "net/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sskel {
namespace {

TEST(SeqArithmeticTest, WrapsSafely) {
  EXPECT_EQ(seq_diff(5, 3), 2);
  EXPECT_EQ(seq_diff(3, 5), -2);
  // Across the 2^64 rollover the signed distance stays small.
  const std::uint64_t near_max = ~std::uint64_t{0} - 1;
  EXPECT_EQ(seq_diff(near_max + 3, near_max), 3);
  EXPECT_TRUE(seq_lt(near_max, near_max + 2));
  EXPECT_FALSE(seq_lt(near_max + 2, near_max));
}

TEST(FragSigTest, PacksAndUnpacksEndpoints) {
  const std::uint64_t sig = frag_sig(/*from=*/7, /*to=*/12);
  EXPECT_EQ(sig_from(sig), 7);
  EXPECT_EQ(sig_to(sig), 12);
}

TEST(FragRingTest, FreshCursorSeesEmptyRing) {
  FragRing<int> ring(8);
  FragRing<int>::Cursor cursor;
  Frag frag;
  EXPECT_EQ(ring.poll(cursor, frag), PollStatus::kEmpty);
  EXPECT_EQ(cursor.seq, 0u);
  EXPECT_EQ(cursor.overruns, 0);
}

TEST(FragRingTest, PublishPollRoundTripPreservesDescriptors) {
  FragRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.payload(static_cast<std::uint32_t>(i)) = 100 + i;
    ring.publish(frag_sig(i, i + 1), static_cast<std::uint32_t>(i),
                 /*round=*/i + 1, /*tsorig=*/10 * i, /*ctl=*/7);
  }
  FragRing<int>::Cursor cursor;
  Frag frag;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(ring.poll(cursor, frag), PollStatus::kFrag);
    EXPECT_EQ(frag.seq, static_cast<std::uint64_t>(i));
    EXPECT_EQ(sig_from(frag.sig), i);
    EXPECT_EQ(sig_to(frag.sig), i + 1);
    EXPECT_EQ(frag.round, i + 1);
    EXPECT_EQ(frag.tsorig, 10 * i);
    EXPECT_EQ(frag.ctl, 7u);
    EXPECT_EQ(ring.payload(frag.slot), 100 + i);
  }
  EXPECT_EQ(ring.poll(cursor, frag), PollStatus::kEmpty);
}

TEST(FragRingTest, DepthRoundsUpToPowerOfTwoMinFour) {
  EXPECT_EQ(FragRing<int>(0).depth(), 4u);
  EXPECT_EQ(FragRing<int>(5).depth(), 8u);
  EXPECT_EQ(FragRing<int>(8).depth(), 8u);
}

TEST(FragRingTest, WraparoundSurvivesManyLaps) {
  FragRing<int> ring(4);  // tiny: every 4 frags is a lap
  FragRing<int>::Cursor cursor;
  Frag frag;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    ring.publish(frag_sig(1, 2), 0, static_cast<Round>(seq), 0);
    ASSERT_EQ(ring.poll(cursor, frag), PollStatus::kFrag);
    EXPECT_EQ(frag.seq, seq);
    EXPECT_EQ(frag.round, static_cast<std::int64_t>(seq));
    EXPECT_EQ(ring.poll(cursor, frag), PollStatus::kEmpty);
  }
  EXPECT_EQ(cursor.overruns, 0);
}

TEST(FragRingTest, OverrunResyncsToOldestLiveFrag) {
  FragRing<int> ring(4);
  // Publish 6 frags without consuming: seqs 0 and 1 are overwritten.
  for (int i = 0; i < 6; ++i) {
    ring.publish(frag_sig(0, 1), 0, /*round=*/i, 0);
  }
  FragRing<int>::Cursor cursor;  // still at seq 0
  Frag frag;
  // Resync is per-line (cursor.seq = tag - mask): the lapped cursor
  // may report an overrun per lapped line it lands on before
  // converging. Line 0 carries seq 4 -> resync to 1; line 1 carries
  // seq 5 -> resync to 2, the oldest seq still live in the ring.
  ASSERT_EQ(ring.poll(cursor, frag), PollStatus::kOverrun);
  EXPECT_EQ(cursor.seq, 1u);
  ASSERT_EQ(ring.poll(cursor, frag), PollStatus::kOverrun);
  EXPECT_EQ(cursor.seq, 2u);
  EXPECT_EQ(cursor.overruns, 2);
  // Everything still live is delivered in order; nothing is lost past
  // the resync point.
  for (int expect = 2; expect < 6; ++expect) {
    ASSERT_EQ(ring.poll(cursor, frag), PollStatus::kFrag);
    EXPECT_EQ(frag.round, expect);
  }
  EXPECT_EQ(ring.poll(cursor, frag), PollStatus::kEmpty);
}

TEST(FragRingTest, IndependentCursorsConsumeIndependently) {
  FragRing<int> ring(8);
  for (int i = 0; i < 3; ++i) ring.publish(frag_sig(0, 1), 0, i, 0);
  FragRing<int>::Cursor a;
  FragRing<int>::Cursor b;
  Frag frag;
  ASSERT_EQ(ring.poll(a, frag), PollStatus::kFrag);
  ASSERT_EQ(ring.poll(a, frag), PollStatus::kFrag);
  // Cursor b still sees everything from the start.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(ring.poll(b, frag), PollStatus::kFrag);
    EXPECT_EQ(frag.round, i);
  }
}

TEST(RingMuxTest, PreservesPerProducerOrder) {
  FragRing<int> ring_a(8);
  FragRing<int> ring_b(8);
  RingMux<int> mux;
  const std::size_t ia = mux.attach(&ring_a);
  const std::size_t ib = mux.attach(&ring_b);
  // Interleave publishes; rounds encode (producer, position).
  ring_a.publish(frag_sig(0, 9), 0, 100, 0);
  ring_b.publish(frag_sig(1, 9), 0, 200, 0);
  ring_a.publish(frag_sig(0, 9), 0, 101, 0);
  ring_b.publish(frag_sig(1, 9), 0, 201, 0);
  ring_a.publish(frag_sig(0, 9), 0, 102, 0);

  std::vector<std::int64_t> from_a;
  std::vector<std::int64_t> from_b;
  Frag frag;
  std::size_t producer = 0;
  while (mux.poll(frag, producer) == PollStatus::kFrag) {
    (producer == ia ? from_a : from_b).push_back(frag.round);
  }
  EXPECT_EQ(from_a, (std::vector<std::int64_t>{100, 101, 102}));
  EXPECT_EQ(from_b, (std::vector<std::int64_t>{200, 201}));
  EXPECT_EQ(mux.seq_consumed(ia), 3u);
  EXPECT_EQ(mux.seq_consumed(ib), 2u);
  EXPECT_EQ(mux.overruns(ia), 0);
  EXPECT_EQ(mux.overruns(ib), 0);
}

TEST(RingMuxTest, RoundRobinDoesNotStarveAnyProducer) {
  FragRing<int> busy(64);
  FragRing<int> quiet(64);
  RingMux<int> mux;
  mux.attach(&busy);
  const std::size_t iq = mux.attach(&quiet);
  for (int i = 0; i < 32; ++i) busy.publish(frag_sig(0, 1), 0, i, 0);
  quiet.publish(frag_sig(1, 1), 0, 999, 0);

  // The quiet producer's single frag must surface within one sweep of
  // the inputs, not after the busy ring drains.
  Frag frag;
  std::size_t producer = 0;
  int polls_until_quiet = 0;
  while (mux.poll(frag, producer) == PollStatus::kFrag) {
    ++polls_until_quiet;
    if (producer == iq) break;
  }
  EXPECT_EQ(frag.round, 999);
  EXPECT_LE(polls_until_quiet, 2);
}

}  // namespace
}  // namespace sskel
