// Tests for credit-based flow control: exhaustion and backpressure,
// watermark-driven refills, and gating on the slowest of several
// consumers.
#include "net/fctl.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

TEST(FlowControlTest, ExhaustsCreditsThenBackpressures) {
  FlowSeq consumer;  // watermark stays at 0: consumer never reads
  FlowControl fctl(4);
  fctl.add_consumer(&consumer);
  std::uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fctl.acquire(seq)) << "publish " << i;
    ++seq;
  }
  // Ring full from the consumer's point of view: backpressure.
  EXPECT_FALSE(fctl.acquire(seq));
  EXPECT_EQ(fctl.stalls(), 1);
  EXPECT_FALSE(fctl.acquire(seq));
  EXPECT_EQ(fctl.stalls(), 2);
}

TEST(FlowControlTest, WatermarkAdvanceRestoresCredits) {
  FlowSeq consumer;
  FlowControl fctl(4);
  fctl.add_consumer(&consumer);
  std::uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fctl.acquire(seq));
    ++seq;
  }
  ASSERT_FALSE(fctl.acquire(seq));

  consumer.publish(2);  // consumer drained seqs 0 and 1
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(fctl.acquire(seq)) << "post-drain publish " << i;
    ++seq;
  }
  EXPECT_FALSE(fctl.acquire(seq));
}

TEST(FlowControlTest, SlowestConsumerGates) {
  FlowSeq fast;
  FlowSeq slow;
  FlowControl fctl(8);
  fctl.add_consumer(&fast);
  fctl.add_consumer(&slow);
  EXPECT_EQ(fctl.consumer_count(), 2u);

  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fctl.acquire(seq));
    ++seq;
  }
  ASSERT_FALSE(fctl.acquire(seq));
  // Only the fast consumer catches up: still gated by the slow one.
  fast.publish(8);
  EXPECT_FALSE(fctl.acquire(seq));
  // The slow consumer frees exactly three seqs.
  slow.publish(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(fctl.acquire(seq));
    ++seq;
  }
  EXPECT_FALSE(fctl.acquire(seq));
}

TEST(FlowControlTest, NoConsumersMeansFullDepthForever) {
  // An unreliable-consumers-only ring: nothing gates the producer.
  FlowControl fctl(2);
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fctl.acquire(seq));
    ++seq;
  }
  EXPECT_EQ(fctl.stalls(), 0);
}

TEST(FlowControlTest, RefillsAreBatchedOffTheHotPath) {
  FlowSeq consumer;
  FlowControl fctl(8);
  fctl.add_consumer(&consumer);
  consumer.publish(0);
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fctl.acquire(seq));
    ++seq;
  }
  // Eight acquires from one cached budget: a single refill.
  EXPECT_EQ(fctl.refills(), 1);
  EXPECT_EQ(fctl.credits_cached(), 0u);
}

TEST(FlowSeqTest, IsOneCacheLine) {
  static_assert(sizeof(FlowSeq) == kCacheLineBytes);
  FlowSeq fseq;
  EXPECT_EQ(fseq.read(), 0u);
  fseq.publish(42);
  EXPECT_EQ(fseq.read(), 42u);
}

}  // namespace
}  // namespace sskel
