// Stress the driver's cross-round buffering: with receiver skews just
// under the round duration, fast senders' round-(r+1) messages arrive
// while slow receivers are still inside round r. Tagged buffering must
// keep rounds separated (communication closure), and payloads must
// never bleed across rounds.
#include <gtest/gtest.h>

#include <memory>

#include "net/driver.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {
namespace {

/// Sends (id, round) pairs and asserts every delivery matches the
/// round it is consumed in.
class TaggedProcess final : public Algorithm<std::pair<ProcId, Round>> {
 public:
  TaggedProcess(ProcId n, ProcId id) : Algorithm(n, id) {}

  std::pair<ProcId, Round> send(Round r) override { return {id(), r}; }

  void transition(Round r,
                  const Inbox<std::pair<ProcId, Round>>& inbox) override {
    ++transitions;
    for (ProcId q : inbox.senders()) {
      const auto& [sender, round] = inbox.from(q);
      EXPECT_EQ(sender, q);
      EXPECT_EQ(round, r) << "round-tag bleed: p" << id() << " consumed a"
                          << " round-" << round << " message in round " << r;
    }
  }

  int transitions = 0;
};

TEST(NetBufferingTest, ExtremeSkewKeepsRoundsSeparated) {
  const ProcId n = 4;
  NetConfig config;
  config.round_duration = 1000;
  // Maximal legal spread: the fastest process runs 999us ahead of the
  // slowest, so its round r+1 traffic regularly lands inside the
  // slowest process's round r window.
  config.skews = {0, 333, 666, 999};
  config.seed = 3;

  std::vector<std::unique_ptr<Algorithm<std::pair<ProcId, Round>>>> procs;
  std::vector<TaggedProcess*> views;
  for (ProcId p = 0; p < n; ++p) {
    auto proc = std::make_unique<TaggedProcess>(n, p);
    views.push_back(proc.get());
    procs.push_back(std::move(proc));
  }
  // Very fast links: messages always arrive within the round.
  NetRoundDriver<std::pair<ProcId, Round>> driver(
      config, LinkMatrix::all_timely(n, 1, 50), std::move(procs));
  SkeletonTracker tracker(n);
  driver.add_observer(tracker.observer());
  driver.run_rounds(20);

  for (const TaggedProcess* v : views) EXPECT_GE(v->transitions, 20);
  // Fast links within skew slack: d <= D + skew(recv) - skew(send)
  // holds for d <= 50 whenever skews differ by < 950... the adverse
  // pair (999 -> 0) has slack 1, so that direction is *not* timely —
  // the skeleton reflects it.
  EXPECT_FALSE(tracker.skeleton().has_edge(3, 0));
  EXPECT_TRUE(tracker.skeleton().has_edge(0, 3));
  EXPECT_GT(driver.late_messages(), 0);
}

TEST(NetBufferingTest, ModerateSkewAllTimely) {
  const ProcId n = 3;
  NetConfig config;
  config.round_duration = 1000;
  config.skews = {0, 100, 200};
  std::vector<std::unique_ptr<Algorithm<std::pair<ProcId, Round>>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<TaggedProcess>(n, p));
  }
  NetRoundDriver<std::pair<ProcId, Round>> driver(
      config, LinkMatrix::all_timely(n, 1, 700), std::move(procs));
  SkeletonTracker tracker(n);
  driver.add_observer(tracker.observer());
  driver.run_rounds(12);
  // Worst adverse slack: D - 200 = 800 >= 700 -> everything timely.
  EXPECT_EQ(tracker.skeleton(), Digraph::complete(n));
  EXPECT_EQ(driver.late_messages(), 0);
}

}  // namespace
}  // namespace sskel
