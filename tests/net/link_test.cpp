// Unit tests for the link delay models.
#include "net/link.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace sskel {
namespace {

TEST(LinkTest, TimelyDelayWithinRange) {
  LinkSpec spec;
  spec.kind = LinkKind::kTimely;
  spec.min_delay = 100;
  spec.max_delay = 500;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const SimTime d = sample_delay(spec, 1000, rng);
    EXPECT_GE(d, 100);
    EXPECT_LE(d, 500);
  }
}

TEST(LinkTest, DownLinkAlwaysLoses) {
  LinkSpec spec;  // default kind = kDown
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sample_delay(spec, 1000, rng), kLost);
}

TEST(LinkTest, FlakyMixesOutcomes) {
  LinkSpec spec;
  spec.kind = LinkKind::kFlaky;
  spec.min_delay = 100;
  spec.max_delay = 900;
  spec.on_time_probability = 0.5;
  Rng rng(3);
  int on_time = 0, late = 0, lost = 0;
  const SimTime slack = 1000;
  for (int i = 0; i < 2000; ++i) {
    const SimTime d = sample_delay(spec, slack, rng);
    if (d == kLost) {
      ++lost;
    } else if (d <= slack) {
      ++on_time;
    } else {
      ++late;
    }
  }
  EXPECT_GT(on_time, 800);
  EXPECT_GT(late, 100);
  EXPECT_GT(lost, 100);
}

TEST(LinkTest, FlakyOnTimeRespectsTightSlack) {
  LinkSpec spec;
  spec.kind = LinkKind::kFlaky;
  spec.min_delay = 100;
  spec.max_delay = 900;
  spec.on_time_probability = 1.0;
  Rng rng(4);
  // Slack below min_delay: an on-time attempt is impossible -> lost.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sample_delay(spec, 50, rng), kLost);
  // Slack inside the range: deliveries are clamped on time.
  for (int i = 0; i < 200; ++i) {
    const SimTime d = sample_delay(spec, 400, rng);
    EXPECT_GE(d, 100);
    EXPECT_LE(d, 400);
  }
}

TEST(LinkMatrixTest, FactoriesAndUpgrade) {
  LinkMatrix m = LinkMatrix::all_flaky(4, 0.3);
  EXPECT_EQ(m.at(0, 1).kind, LinkKind::kFlaky);

  Digraph stable(4);
  stable.add_edge(0, 1);
  stable.add_edge(2, 3);
  stable.add_self_loops();  // self-loops must be ignored by upgrade
  m.upgrade_to_timely(stable, 100, 400);
  EXPECT_EQ(m.at(0, 1).kind, LinkKind::kTimely);
  EXPECT_EQ(m.at(2, 3).kind, LinkKind::kTimely);
  EXPECT_EQ(m.at(1, 0).kind, LinkKind::kFlaky);

  const LinkMatrix t = LinkMatrix::all_timely(3, 10, 20);
  EXPECT_EQ(t.at(2, 0).kind, LinkKind::kTimely);
  EXPECT_EQ(t.at(2, 0).min_delay, 10);
  EXPECT_EQ(t.at(2, 0).max_delay, 20);
}

}  // namespace
}  // namespace sskel
