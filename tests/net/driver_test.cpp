// Tests for the network round driver: the synchronizer must implement
// the paper's round abstraction exactly — communication closure,
// derived graphs matching actual on-time deliveries, self-delivery,
// clock-skew effects.
#include "net/driver.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "skeleton/tracker.hpp"

namespace sskel {
namespace {

/// Records per-round sender sets (the process-eye view of HO sets).
class RecordingProcess final : public Algorithm<int> {
 public:
  RecordingProcess(ProcId n, ProcId id) : Algorithm(n, id) {}
  int send(Round r) override { return static_cast<int>(id()) * 1000 + r; }
  void transition(Round r, const Inbox<int>& inbox) override {
    heard.push_back(inbox.senders());
    for (ProcId q : inbox.senders()) {
      // Payload integrity: the message is q's round-r message.
      EXPECT_EQ(inbox.from(q), static_cast<int>(q) * 1000 + r);
    }
  }
  std::vector<ProcSet> heard;
};

std::vector<std::unique_ptr<Algorithm<int>>> make_recorders(ProcId n) {
  std::vector<std::unique_ptr<Algorithm<int>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<RecordingProcess>(n, p));
  }
  return procs;
}

TEST(NetDriverTest, AllTimelyLinksGiveCompleteRounds) {
  NetConfig config;
  config.round_duration = 1000;
  NetRoundDriver<int> driver(config, LinkMatrix::all_timely(4, 100, 800),
                             make_recorders(4));
  SkeletonTracker tracker(4);
  driver.add_observer(tracker.observer());
  driver.run_rounds(5);
  EXPECT_EQ(tracker.skeleton(), Digraph::complete(4));
  EXPECT_EQ(driver.late_messages(), 0);
  EXPECT_EQ(driver.lost_messages(), 0);
  // 4 procs x 3 peers x 5 rounds... plus round-6 messages already in
  // flight; at least the first 5 rounds' worth arrived.
  EXPECT_GE(driver.delivered_messages(), 4 * 3 * 5);
}

TEST(NetDriverTest, DownLinksNeverAppear) {
  LinkMatrix links = LinkMatrix::all_timely(3, 100, 500);
  LinkSpec down;  // kDown
  links.set(0, 2, down);  // 0 -> 2 is dead
  NetConfig config;
  NetRoundDriver<int> driver(config, links, make_recorders(3));
  SkeletonTracker tracker(3);
  driver.add_observer(tracker.observer());
  driver.run_rounds(4);
  EXPECT_FALSE(tracker.skeleton().has_edge(0, 2));
  EXPECT_TRUE(tracker.skeleton().has_edge(2, 0));
  EXPECT_TRUE(tracker.skeleton().has_edge(0, 1));
}

TEST(NetDriverTest, SelfDeliveryAlways) {
  // Even with every link down, each process hears itself each round.
  LinkMatrix links(2);  // all kDown
  NetConfig config;
  NetRoundDriver<int> driver(config, links, make_recorders(2));
  SkeletonTracker tracker(2);
  driver.add_observer(tracker.observer());
  driver.run_rounds(3);
  EXPECT_EQ(tracker.skeleton(), Digraph::self_loops_only(2));
}

TEST(NetDriverTest, SlowLinkIsDiscardedAsLate) {
  // A "timely" link whose delay exceeds the round duration delivers
  // every message after the deadline: pure asynchrony, modelled as a
  // permanently missing edge plus late-message discards.
  LinkMatrix links = LinkMatrix::all_timely(2, 100, 200);
  LinkSpec slow;
  slow.kind = LinkKind::kTimely;
  slow.min_delay = 1500;
  slow.max_delay = 1800;
  links.set(0, 1, slow);
  NetConfig config;
  config.round_duration = 1000;
  NetRoundDriver<int> driver(config, links, make_recorders(2));
  SkeletonTracker tracker(2);
  driver.add_observer(tracker.observer());
  driver.run_rounds(5);
  EXPECT_FALSE(tracker.skeleton().has_edge(0, 1));
  EXPECT_TRUE(tracker.skeleton().has_edge(1, 0));
  EXPECT_GT(driver.late_messages(), 0);
}

TEST(NetDriverTest, ClockSkewShiftsTimeliness) {
  // Sender 0 runs late by 600us; its 500-700us link to receiver 1
  // (who runs on time) now needs d <= D + skew(1) - skew(0) = 400us:
  // never on time. The reverse direction gains slack (1600us) and
  // always arrives.
  LinkMatrix links = LinkMatrix::all_timely(2, 500, 700);
  NetConfig config;
  config.round_duration = 1000;
  config.skews = {600, 0};
  NetRoundDriver<int> driver(config, links, make_recorders(2));
  SkeletonTracker tracker(2);
  driver.add_observer(tracker.observer());
  driver.run_rounds(5);
  EXPECT_FALSE(tracker.skeleton().has_edge(0, 1));
  EXPECT_TRUE(tracker.skeleton().has_edge(1, 0));
}

TEST(NetDriverTest, DerivedGraphMatchesProcessView) {
  // The graph the observers see must equal what the processes heard.
  NetConfig config;
  config.seed = 9;
  LinkMatrix links = LinkMatrix::all_flaky(3, 0.6);
  NetRoundDriver<int> driver(config, links, make_recorders(3));
  std::vector<Digraph> derived;
  driver.add_observer(
      [&](Round, const Digraph& g) { derived.push_back(g); });
  driver.run_rounds(6);
  ASSERT_GE(derived.size(), 6u);
  for (ProcId p = 0; p < 3; ++p) {
    const auto& proc =
        static_cast<const RecordingProcess&>(driver.process(p));
    ASSERT_GE(proc.heard.size(), 6u);
    for (std::size_t r = 0; r < 6; ++r) {
      EXPECT_EQ(proc.heard[r], derived[r].in_neighbors(p))
          << "p=" << p << " r=" << r + 1;
    }
  }
}

TEST(NetDriverTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    NetConfig config;
    config.seed = seed;
    NetRoundDriver<int> driver(config, LinkMatrix::all_flaky(4, 0.5),
                               make_recorders(4));
    SkeletonTracker tracker(4);
    driver.add_observer(tracker.observer());
    driver.run_rounds(8);
    return std::pair(driver.delivered_messages(),
                     tracker.skeleton().edge_count());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // overwhelmingly likely to differ
}

TEST(NetDriverTest, RunUntilPredicate) {
  NetConfig config;
  NetRoundDriver<int> driver(config, LinkMatrix::all_timely(2, 10, 20),
                             make_recorders(2));
  const bool fired = driver.run_until(
      [&] { return driver.rounds_completed() >= 3; }, 10);
  EXPECT_TRUE(fired);
  EXPECT_GE(driver.rounds_completed(), 3);
}

}  // namespace
}  // namespace sskel
