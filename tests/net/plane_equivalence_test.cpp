// The bit-equality tripwire for the message plane (DESIGN.md §12):
// the same seeded run through the legacy event-queue path and the
// ring plane must produce identical KSetRunReports — same decisions,
// same derived skeletons, same message accounting, same simulated
// clock — under clean networks, lossy/flaky networks with late
// arrivals, deadline ties, and ring backpressure alike. Only the
// plane-mechanics counters (credit_stalls, ring_frags) may differ.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/kset_net.hpp"

namespace sskel {
namespace {

void expect_reports_equal(const NetKSetReport& ring,
                          const NetKSetReport& eq) {
  const KSetRunReport& a = ring.kset;
  const KSetRunReport& b = eq.kset;
  EXPECT_EQ(a.n, b.n);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t p = 0; p < a.outcomes.size(); ++p) {
    EXPECT_EQ(a.outcomes[p].proposal, b.outcomes[p].proposal) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decided, b.outcomes[p].decided) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decision, b.outcomes[p].decision) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decision_round, b.outcomes[p].decision_round)
        << "p=" << p;
  }
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.verdict.k_agreement, b.verdict.k_agreement);
  EXPECT_EQ(a.verdict.validity, b.verdict.validity);
  EXPECT_EQ(a.verdict.termination, b.verdict.termination);
  EXPECT_EQ(a.verdict.distinct_decisions, b.verdict.distinct_decisions);
  EXPECT_EQ(a.verdict.last_decision_round, b.verdict.last_decision_round);
  EXPECT_EQ(a.all_decided, b.all_decided);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.last_decision_round, b.last_decision_round);
  EXPECT_EQ(a.distinct_values, b.distinct_values);
  EXPECT_EQ(a.final_skeleton, b.final_skeleton);
  EXPECT_EQ(a.skeleton_last_change, b.skeleton_last_change);
  EXPECT_EQ(a.root_components_final, b.root_components_final);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.max_message_bytes, b.max_message_bytes);
  EXPECT_EQ(a.lemma_violations, b.lemma_violations);

  EXPECT_EQ(ring.delivered_messages, eq.delivered_messages);
  EXPECT_EQ(ring.late_messages, eq.late_messages);
  EXPECT_EQ(ring.lost_messages, eq.lost_messages);
  EXPECT_EQ(ring.wall_clock, eq.wall_clock);
  // credit_stalls / ring_frags are plane mechanics, free to differ.
}

NetKSetReport run_on_plane(const LinkMatrix& links, NetKSetConfig config,
                           NetPlane plane, std::size_t ring_depth = 0) {
  config.net.plane = plane;
  config.net.ring_depth = ring_depth;
  return run_kset_over_network(links, config);
}

TEST(PlaneEquivalenceTest, CleanTimelyNetworkWithSkews) {
  const ProcId n = 6;
  NetKSetConfig config;
  config.run.k = 1;
  config.run.tail_rounds = 3;
  config.run.measure_bytes = true;
  config.net.round_duration = 1000;
  config.net.seed = 0x5EED01;
  for (ProcId p = 0; p < n; ++p) {
    config.net.skews.push_back((static_cast<SimTime>(p) * 137) % 900);
  }
  const LinkMatrix links = LinkMatrix::all_timely(n, 50, 400);
  expect_reports_equal(run_on_plane(links, config, NetPlane::kRing),
                       run_on_plane(links, config, NetPlane::kEventQueue));
}

TEST(PlaneEquivalenceTest, FlakyLossyNetworkWithLateArrivals) {
  const ProcId n = 7;
  NetKSetConfig config;
  config.run.k = 2;
  config.run.max_rounds = 40;
  config.run.tail_rounds = 2;
  config.net.round_duration = 800;
  config.net.seed = 0x5EED02;
  for (ProcId p = 0; p < n; ++p) {
    config.net.skews.push_back((static_cast<SimTime>(p) * 61) % 500);
  }
  // Timely 2-hub cover over a flaky remainder: real lates and losses.
  Digraph stable(n);
  stable.add_self_loops();
  for (ProcId p = 0; p < n; ++p) stable.add_edge(p % 2, p);
  LinkMatrix links = LinkMatrix::all_flaky(n, 0.5);
  links.upgrade_to_timely(stable, 100, 600);

  const NetKSetReport ring = run_on_plane(links, config, NetPlane::kRing);
  const NetKSetReport eq =
      run_on_plane(links, config, NetPlane::kEventQueue);
  expect_reports_equal(ring, eq);
  // The scenario must actually exercise the late/lost paths, or this
  // tripwire silently loses its teeth.
  EXPECT_GT(ring.late_messages, 0);
  EXPECT_GT(ring.lost_messages, 0);
}

TEST(PlaneEquivalenceTest, DeadlineTiesResolveIdentically) {
  // Fixed-delay links with delay == D land every arrival exactly on
  // the receiver's deadline — the one (time, seq) tie the ring plane
  // must reproduce analytically (close_precedes_delivery_at_tie).
  const ProcId n = 4;
  NetKSetConfig config;
  config.run.k = 1;
  config.run.max_rounds = 30;
  config.net.round_duration = 1000;
  config.net.seed = 0x5EED03;
  const LinkMatrix links = LinkMatrix::all_timely(n, 1000, 1000);
  const NetKSetReport ring = run_on_plane(links, config, NetPlane::kRing);
  const NetKSetReport eq =
      run_on_plane(links, config, NetPlane::kEventQueue);
  expect_reports_equal(ring, eq);
}

TEST(PlaneEquivalenceTest, TiedDeadlinesWithSkewedClocks) {
  // Mixed skews + exact-deadline delays: ties where the close-first
  // verdict differs per (sender, receiver) pair by skew and id order.
  const ProcId n = 5;
  NetKSetConfig config;
  config.run.k = 1;
  config.run.max_rounds = 30;
  config.run.tail_rounds = 2;
  config.net.round_duration = 1000;
  config.net.seed = 0x5EED04;
  config.net.skews = {0, 300, 0, 300, 600};
  const LinkMatrix links = LinkMatrix::all_timely(n, 1000, 1000);
  expect_reports_equal(run_on_plane(links, config, NetPlane::kRing),
                       run_on_plane(links, config, NetPlane::kEventQueue));
}

TEST(PlaneEquivalenceTest, TinyRingDepthBackpressureChangesNothing) {
  const ProcId n = 8;
  NetKSetConfig config;
  config.run.k = 1;
  config.run.tail_rounds = 2;
  config.net.round_duration = 1000;
  config.net.seed = 0x5EED05;
  for (ProcId p = 0; p < n; ++p) {
    config.net.skews.push_back((static_cast<SimTime>(p) * 201) % 1000);
  }
  const LinkMatrix links = LinkMatrix::all_timely(n, 30, 300);
  // Depth 4 against n-1 = 7 inbound publishes per round: early drains
  // must fire, and the report must not move an inch.
  const NetKSetReport ring =
      run_on_plane(links, config, NetPlane::kRing, /*ring_depth=*/4);
  const NetKSetReport eq =
      run_on_plane(links, config, NetPlane::kEventQueue);
  expect_reports_equal(ring, eq);
  EXPECT_GT(ring.credit_stalls, 0);
  EXPECT_EQ(eq.credit_stalls, 0);
}

TEST(PlaneEquivalenceTest, RingFragCountMatchesDeliveries) {
  // On a clean all-timely network every non-self delivery crosses a
  // ring exactly once (no lates, no ties, no stall re-publishes).
  const ProcId n = 5;
  NetKSetConfig config;
  config.run.k = 1;
  config.net.seed = 0x5EED06;
  const LinkMatrix links = LinkMatrix::all_timely(n, 100, 800);
  const NetKSetReport ring = run_on_plane(links, config, NetPlane::kRing);
  EXPECT_GE(ring.ring_frags, ring.delivered_messages);
  const NetKSetReport eq =
      run_on_plane(links, config, NetPlane::kEventQueue);
  EXPECT_EQ(eq.ring_frags, 0);
  expect_reports_equal(ring, eq);
}

}  // namespace
}  // namespace sskel
