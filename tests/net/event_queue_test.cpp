// Unit tests for the discrete-event queue.
#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sskel {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoTieBreakOnEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(7, [&order, i] { order.push_back(i); });
  }
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule(1, [&] {
    times.push_back(q.now());
    q.schedule(5, [&] {
      times.push_back(q.now());
      q.schedule(9, [&] { times.push_back(q.now()); });
    });
  });
  while (q.step()) {
  }
  EXPECT_EQ(times, (std::vector<SimTime>{1, 5, 9}));
}

TEST(EventQueueTest, RunWithLimit) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule(i, [&] { ++count; });
  }
  EXPECT_EQ(q.run(4), 4);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(q.run(100), 6);
}

TEST(EventQueueTest, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDeathTest, SchedulingInThePastRejected) {
  EventQueue q;
  q.schedule(10, [] {});
  q.step();
  EXPECT_DEATH(q.schedule(5, [] {}), "precondition");
}

}  // namespace
}  // namespace sskel
