// Unit tests for the discrete-event queue.
#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sskel {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoTieBreakOnEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(7, [&order, i] { order.push_back(i); });
  }
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule(1, [&] {
    times.push_back(q.now());
    q.schedule(5, [&] {
      times.push_back(q.now());
      q.schedule(9, [&] { times.push_back(q.now()); });
    });
  });
  while (q.step()) {
  }
  EXPECT_EQ(times, (std::vector<SimTime>{1, 5, 9}));
}

TEST(EventQueueTest, RunWithLimit) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule(i, [&] { ++count; });
  }
  EXPECT_EQ(q.run(4), 4);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(q.run(100), 6);
}

TEST(EventQueueTest, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PeekKeyExposesEarliestTimeAndSeq) {
  EventQueue q;
  SimTime t = -1;
  std::uint64_t seq = 99;
  EXPECT_FALSE(q.peek_key(t, seq));

  q.schedule(20, [] {});  // seq 0
  q.schedule(10, [] {});  // seq 1
  ASSERT_TRUE(q.peek_key(t, seq));
  EXPECT_EQ(t, 10);
  EXPECT_EQ(seq, 1u);

  q.step();
  ASSERT_TRUE(q.peek_key(t, seq));
  EXPECT_EQ(t, 20);
  EXPECT_EQ(seq, 0u);
}

TEST(EventQueueTest, ExternalTimerInterleavesByTimeSeqKey) {
  // The ring driver's calendar discipline, in miniature: an external
  // timer draws its seq at registration time, compares against
  // peek_key to decide who fires next, and reports through
  // advance_now — reproducing exactly the order one heap would give.
  EventQueue q;
  std::vector<int> order;

  q.schedule(10, [&] { order.push_back(1) /* heap @10, seq 0 */; });
  const std::uint64_t timer_a_seq = q.take_seq();  // external @15, seq 1
  q.schedule(15, [&] { order.push_back(3) /* heap @15, seq 2 */; });
  const std::uint64_t timer_b_seq = q.take_seq();  // external @15, seq 3

  struct ExternalTimer {
    SimTime time;
    std::uint64_t seq;
    int tag;
  };
  std::vector<ExternalTimer> timers{{15, timer_a_seq, 2},
                                    {15, timer_b_seq, 4}};
  std::size_t next = 0;

  for (;;) {
    SimTime head_time = 0;
    std::uint64_t head_seq = 0;
    const bool queued = q.peek_key(head_time, head_seq);
    const bool timed = next < timers.size();
    if (!queued && !timed) break;
    if (timed &&
        (!queued || timers[next].time < head_time ||
         (timers[next].time == head_time && timers[next].seq < head_seq))) {
      q.advance_now(timers[next].time);
      order.push_back(timers[next].tag);
      ++next;
    } else {
      ASSERT_TRUE(q.step());
    }
  }
  // All three seq-1..3 entries share t=15; seq decides: 2, 3, 4.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueueTest, AdvanceNowMovesTheClockWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  q.advance_now(42);
  EXPECT_EQ(q.now(), 42);
  q.advance_now(42);  // idempotent at the same instant
  EXPECT_EQ(q.now(), 42);
  // Scheduling respects the externally-advanced clock.
  q.schedule(50, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueueDeathTest, AdvanceNowBackwardsRejected) {
  EventQueue q;
  q.advance_now(10);
  EXPECT_DEATH(q.advance_now(5), "precondition");
}

TEST(EventQueueDeathTest, SchedulingInThePastRejected) {
  EventQueue q;
  q.schedule(10, [] {});
  q.step();
  EXPECT_DEATH(q.schedule(5, [] {}), "precondition");
}

}  // namespace
}  // namespace sskel
