// Full-run capture on the network substrate (DESIGN.md §14).
//
// Three properties anchor the record/replay workflow:
//  1. The two message planes produce *identical* captures — not just
//     identical reports: same broadcasts, same delivery fates in the
//     same schedule order, same closes. The ring plane earns this by
//     scheduling one stand-in trace event per on-time/tie message at
//     its arrival instant, mirroring the event-queue plane's
//     per-delivery events.
//  2. A net capture replays bit-exactly through the Simulator: the
//     derived graphs are a perfect deterministic adversary.
//  3. The capture round-trips through the framed codec.
#include <gtest/gtest.h>

#include <vector>

#include "kset/message.hpp"
#include "net/kset_net.hpp"
#include "rounds/record.hpp"
#include "rounds/trace.hpp"

namespace sskel {
namespace {

struct CapturedRun {
  KSetRunReport report;
  RunCapture capture;
};

CapturedRun run_with_capture(const LinkMatrix& links, NetKSetConfig config,
                             NetPlane plane, std::size_t ring_depth = 0) {
  config.net.plane = plane;
  config.net.ring_depth = ring_depth;
  const ProcId n = links.n();
  NetRoundDriver<SkeletonMessage> driver(
      config.net, links, make_kset_processes(n, config.run));
  TraceRecorder recorder(n, driver.trace_source(), config.net.seed,
                         config.net.round_duration);
  driver.set_trace_sink(&recorder, [](const SkeletonMessage& m,
                                      std::vector<std::uint8_t>& out) {
    encode_message(m, out);
  });
  recorder.attach(driver);
  CapturedRun out;
  out.report = run_kset_on_engine(driver, config.run);
  out.capture = recorder.finish(driver.trace());
  return out;
}

void expect_kset_reports_equal(const KSetRunReport& a, const KSetRunReport& b) {
  EXPECT_EQ(a.n, b.n);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t p = 0; p < a.outcomes.size(); ++p) {
    EXPECT_EQ(a.outcomes[p].proposal, b.outcomes[p].proposal) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decided, b.outcomes[p].decided) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decision, b.outcomes[p].decision) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decision_round, b.outcomes[p].decision_round)
        << "p=" << p;
  }
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.all_decided, b.all_decided);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.last_decision_round, b.last_decision_round);
  EXPECT_EQ(a.distinct_values, b.distinct_values);
  EXPECT_EQ(a.final_skeleton, b.final_skeleton);
  EXPECT_EQ(a.skeleton_last_change, b.skeleton_last_change);
  EXPECT_EQ(a.root_components_final, b.root_components_final);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.max_message_bytes, b.max_message_bytes);
  EXPECT_EQ(a.lemma_violations, b.lemma_violations);
}

/// A lossy, skewed network with real late arrivals: the hardest
/// schedule short of deadline ties.
NetKSetConfig flaky_config(ProcId n) {
  NetKSetConfig config;
  config.run.k = 2;
  config.run.max_rounds = 40;
  config.run.tail_rounds = 2;
  config.net.round_duration = 800;
  config.net.seed = 0x7EACE01;
  for (ProcId p = 0; p < n; ++p) {
    config.net.skews.push_back((static_cast<SimTime>(p) * 61) % 500);
  }
  return config;
}

LinkMatrix flaky_links(ProcId n) {
  Digraph stable(n);
  stable.add_self_loops();
  for (ProcId p = 0; p < n; ++p) stable.add_edge(p % 2, p);
  LinkMatrix links = LinkMatrix::all_flaky(n, 0.5);
  links.upgrade_to_timely(stable, 100, 600);
  return links;
}

TEST(TraceCaptureTest, PlanesProduceIdenticalCaptures) {
  const ProcId n = 7;
  const NetKSetConfig config = flaky_config(n);
  const LinkMatrix links = flaky_links(n);

  const CapturedRun ring =
      run_with_capture(links, config, NetPlane::kRing);
  const CapturedRun eq =
      run_with_capture(links, config, NetPlane::kEventQueue);

  // Identical except for the self-describing source tag.
  EXPECT_EQ(ring.capture.header.source, TraceSource::kNetRing);
  EXPECT_EQ(eq.capture.header.source, TraceSource::kNetEventQueue);
  RunCapture ring_rebased = ring.capture;
  ring_rebased.header.source = TraceSource::kNetEventQueue;
  EXPECT_EQ(ring_rebased.graphs, eq.capture.graphs);
  EXPECT_EQ(ring_rebased.stats, eq.capture.stats);
  EXPECT_EQ(ring_rebased.messages, eq.capture.messages);
  EXPECT_EQ(ring_rebased.deliveries, eq.capture.deliveries);
  EXPECT_EQ(ring_rebased.closes, eq.capture.closes);
  EXPECT_EQ(ring_rebased, eq.capture);

  // The scenario must actually exercise every fate but ties.
  int late = 0;
  int dropped = 0;
  int on_time = 0;
  for (const DeliveryRecord& d : ring.capture.deliveries) {
    late += d.kind == DeliveryKind::kLate;
    dropped += d.kind == DeliveryKind::kDropped;
    on_time += d.kind == DeliveryKind::kOnTime;
  }
  EXPECT_GT(late, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_GT(on_time, 0);
  EXPECT_FALSE(ring.capture.messages.empty());
  EXPECT_FALSE(ring.capture.closes.empty());
}

TEST(TraceCaptureTest, DeadlineTieCapturesAgreeAcrossPlanes) {
  // delay == D lands every arrival exactly on the receiver's deadline:
  // the close/delivery tie is the one schedule point the ring plane
  // resolves analytically rather than through the event queue.
  const ProcId n = 4;
  NetKSetConfig config;
  config.run.k = 1;
  config.run.max_rounds = 30;
  config.net.round_duration = 1000;
  config.net.seed = 0x7EACE02;
  const LinkMatrix links = LinkMatrix::all_timely(n, 1000, 1000);

  const CapturedRun ring =
      run_with_capture(links, config, NetPlane::kRing);
  const CapturedRun eq =
      run_with_capture(links, config, NetPlane::kEventQueue);

  RunCapture ring_rebased = ring.capture;
  ring_rebased.header.source = TraceSource::kNetEventQueue;
  EXPECT_EQ(ring_rebased, eq.capture);

  int ties = 0;
  for (const DeliveryRecord& d : ring.capture.deliveries) {
    ties += d.kind == DeliveryKind::kTieDiscard;
  }
  EXPECT_GT(ties, 0);
}

TEST(TraceCaptureTest, NetCaptureReplaysBitExactOnSimulator) {
  // The reproduce-a-bug workflow across substrates: capture a network
  // run, feed the derived graphs back through the Simulator, and the
  // report comes out bit-identical. measure_bytes stays off — the net
  // substrate byte-accounts tie discards the derived graph cannot
  // represent — and the derived graphs always contain every node
  // (self-delivery), so the Simulator's full-universe invariant holds.
  const ProcId n = 7;
  NetKSetConfig config = flaky_config(n);
  config.run.measure_bytes = false;

  for (const NetPlane plane : {NetPlane::kRing, NetPlane::kEventQueue}) {
    const CapturedRun net = run_with_capture(flaky_links(n), config, plane);
    ASSERT_FALSE(net.capture.graphs.empty());

    ReplaySource replay(net.capture.graphs);
    const KSetRunReport replayed = run_kset(replay, config.run);
    expect_kset_reports_equal(replayed, net.report);
  }
}

TEST(TraceCaptureTest, NetCaptureRoundTripsThroughCodec) {
  const ProcId n = 5;
  const CapturedRun run = run_with_capture(
      flaky_links(n), flaky_config(n), NetPlane::kRing);
  const std::vector<std::uint8_t> bytes = encode_trace(run.capture);
  DecodeResult<RunCapture> back = decode_trace(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value(), run.capture);
  EXPECT_EQ(encode_trace(back.value()), bytes);
}

}  // namespace
}  // namespace sskel
