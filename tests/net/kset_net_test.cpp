// End-to-end: Algorithm 1 over the simulated network.
//
// Timely hub links realize Psrcs(k) on the derived skeleton; the
// decisions must respect the k ceiling, and the derived skeleton must
// contain exactly the timely structure.
#include "net/kset_net.hpp"

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "predicates/psrcs.hpp"

namespace sskel {
namespace {

/// k singleton hubs, every process assigned to hub (p % k), timely
/// hub->member links, everything else flaky.
LinkMatrix hub_links(ProcId n, int k, double flaky_probability) {
  Digraph stable(n);
  stable.add_self_loops();
  for (ProcId p = 0; p < n; ++p) {
    stable.add_edge(p % static_cast<ProcId>(k), p);
  }
  LinkMatrix links = LinkMatrix::all_flaky(n, flaky_probability);
  links.upgrade_to_timely(stable, 100, 700);
  return links;
}

TEST(NetKSetTest, AllTimelyGivesConsensus) {
  NetKSetConfig config;
  config.run.k = 1;
  const NetKSetReport report =
      run_kset_over_network(LinkMatrix::all_timely(5, 100, 800), config);
  ASSERT_TRUE(report.kset.all_decided);
  EXPECT_TRUE(report.kset.verdict.all_hold());
  EXPECT_EQ(report.kset.distinct_values, 1);
  EXPECT_EQ(report.kset.outcomes[0].decision, 7);
  EXPECT_EQ(report.kset.final_skeleton, Digraph::complete(5));
}

TEST(NetKSetTest, HubTopologySatisfiesPsrcsKAndKAgreement) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ProcId n = 9;
    const int k = 3;
    NetKSetConfig config;
    config.run.k = k;
    config.net.seed = seed;
    const NetKSetReport report =
        run_kset_over_network(hub_links(n, k, 0.4), config);
    ASSERT_TRUE(report.kset.all_decided) << "seed " << seed;
    EXPECT_TRUE(report.kset.verdict.all_hold()) << "seed " << seed;

    // The derived skeleton contains the timely hub edges, so the hubs
    // are a hub cover: Psrcs(k) holds on the derived skeleton.
    ProcSet hubs(n);
    for (ProcId h = 0; h < static_cast<ProcId>(k); ++h) hubs.insert(h);
    EXPECT_TRUE(is_hub_cover(report.kset.final_skeleton, hubs));
    EXPECT_TRUE(check_psrcs_exact(report.kset.final_skeleton, k).holds);
    // Theorem 1 on the derived skeleton.
    EXPECT_LE(root_components(report.kset.final_skeleton).size(),
              static_cast<std::size_t>(k));
  }
}

TEST(NetKSetTest, WallClockMatchesRounds) {
  NetKSetConfig config;
  config.run.k = 1;
  config.net.round_duration = 2000;
  const NetKSetReport report =
      run_kset_over_network(LinkMatrix::all_timely(4, 50, 300), config);
  ASSERT_TRUE(report.kset.all_decided);
  // Simulated time is rounds x duration (within one round of slack for
  // the in-flight boundary).
  EXPECT_GE(report.wall_clock,
            static_cast<SimTime>(report.kset.last_decision_round) * 2000);
}

TEST(NetKSetTest, FlakyEverythingStillSafeWhenLonersForm) {
  // All-flaky networks give no predicate guarantee: the skeleton can
  // shatter into up to n singleton roots and up to n values — but
  // validity and termination must still hold (they are predicate-free).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    NetKSetConfig config;
    config.run.k = 1;  // judge against consensus to observe the spread
    config.net.seed = seed;
    const NetKSetReport report =
        run_kset_over_network(LinkMatrix::all_flaky(5, 0.5), config);
    ASSERT_TRUE(report.kset.all_decided) << "seed " << seed;
    EXPECT_TRUE(report.kset.verdict.validity);
    EXPECT_GE(report.kset.distinct_values, 1);
    EXPECT_LE(report.kset.distinct_values, 5);
  }
}

TEST(NetKSetTest, SkewedClocksStillAgree) {
  NetKSetConfig config;
  config.run.k = 1;
  config.net.round_duration = 1000;
  config.net.skews = {0, 150, 300, 450, 600};
  // Tight delays keep every link timely in both directions despite
  // the 600us worst-case skew: d <= D - 600 suffices.
  const NetKSetReport report =
      run_kset_over_network(LinkMatrix::all_timely(5, 50, 350), config);
  ASSERT_TRUE(report.kset.all_decided);
  EXPECT_EQ(report.kset.distinct_values, 1);
  EXPECT_EQ(report.kset.final_skeleton, Digraph::complete(5));
}

}  // namespace
}  // namespace sskel
