// Unit tests for reachability and shortest paths.
#include "graph/reach.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

Digraph chain(ProcId n) {
  Digraph g(n);
  for (ProcId p = 0; p + 1 < n; ++p) g.add_edge(p, p + 1);
  return g;
}

TEST(ReachTest, ReachableFromChain) {
  const Digraph g = chain(5);
  EXPECT_EQ(reachable_from(g, 0), ProcSet::full(5));
  EXPECT_EQ(reachable_from(g, 3), ProcSet::of(5, {3, 4}));
  EXPECT_EQ(reachable_from(g, 4), ProcSet::singleton(5, 4));
}

TEST(ReachTest, ReachingChain) {
  const Digraph g = chain(5);
  EXPECT_EQ(reaching(g, 4), ProcSet::full(5));
  EXPECT_EQ(reaching(g, 0), ProcSet::singleton(5, 0));
  EXPECT_EQ(reaching(g, 2), ProcSet::of(5, {0, 1, 2}));
}

TEST(ReachTest, AbsentNodeYieldsEmpty) {
  Digraph g = chain(3);
  g.remove_node(1);
  EXPECT_TRUE(reachable_from(g, 1).empty());
  EXPECT_EQ(reachable_from(g, 0), ProcSet::singleton(3, 0));
}

TEST(ReachTest, ReachableStopsAtRemovedNode) {
  Digraph g = chain(5);
  g.remove_node(2);
  EXPECT_EQ(reachable_from(g, 0), ProcSet::of(5, {0, 1}));
  EXPECT_EQ(reaching(g, 4), ProcSet::of(5, {3, 4}));
}

TEST(ShortestPathLengthTest, ChainDistances) {
  const Digraph g = chain(5);
  EXPECT_EQ(shortest_path_length(g, 0, 4), 4);
  EXPECT_EQ(shortest_path_length(g, 2, 2), 0);
  EXPECT_EQ(shortest_path_length(g, 4, 0), std::nullopt);
}

TEST(ShortestPathLengthTest, PrefersShortcut) {
  Digraph g = chain(5);
  g.add_edge(0, 3);
  EXPECT_EQ(shortest_path_length(g, 0, 4), 2);
}

TEST(ShortestPathTest, ReturnsNodeSequence) {
  Digraph g = chain(4);
  const std::vector<ProcId> path = shortest_path(g, 0, 3);
  EXPECT_EQ(path, (std::vector<ProcId>{0, 1, 2, 3}));
  EXPECT_TRUE(shortest_path(g, 3, 0).empty());
  EXPECT_EQ(shortest_path(g, 2, 2), (std::vector<ProcId>{2}));
}

TEST(ShortestPathTest, PathLengthBoundedByNMinus1) {
  // The structural fact used throughout Lemma 4 / Theorem 8: simple
  // paths have at most n-1 edges.
  const Digraph g = chain(6);
  const std::vector<ProcId> path = shortest_path(g, 0, 5);
  EXPECT_LE(path.size(), 6u);
  EXPECT_EQ(path.size() - 1, 5u);
}

TEST(MaxDistanceToTest, Chain) {
  const Digraph g = chain(5);
  EXPECT_EQ(max_distance_to(g, 4), 4);
  EXPECT_EQ(max_distance_to(g, 0), 0);
}

TEST(MaxDistanceToTest, SelfLoopDoesNotInflate) {
  Digraph g = chain(3);
  g.add_self_loops();
  EXPECT_EQ(max_distance_to(g, 2), 2);
}

}  // namespace
}  // namespace sskel
