// Unit tests for LabeledDigraph: the approximation-graph operations of
// Algorithm 1 (reset, labeled add, max-merge, purge, prune).
#include "graph/labeled_digraph.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

TEST(LabeledDigraphTest, InitialStateIsOwnerOnly) {
  const LabeledDigraph g(6, 2);
  EXPECT_EQ(g.nodes(), ProcSet::singleton(6, 2));
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.min_label(), 0);
  EXPECT_EQ(g.max_label(), 0);
}

TEST(LabeledDigraphTest, SetEdgeInsertsNodes) {
  LabeledDigraph g(6, 0);
  g.set_edge(3, 0, 5);
  EXPECT_TRUE(g.has_node(3));
  EXPECT_EQ(g.label(3, 0), 5);
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(LabeledDigraphTest, SetEdgeOverwritesLabel) {
  LabeledDigraph g(4, 0);
  g.set_edge(1, 0, 2);
  g.set_edge(1, 0, 7);
  EXPECT_EQ(g.label(1, 0), 7);
  EXPECT_EQ(g.edge_count(), 1);  // single labeled edge per pair
}

TEST(LabeledDigraphTest, ResetClearsEverything) {
  LabeledDigraph g(4, 0);
  g.set_edge(1, 0, 2);
  g.set_edge(2, 1, 3);
  g.reset(0);
  EXPECT_EQ(g.nodes(), ProcSet::singleton(4, 0));
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(LabeledDigraphTest, MergeMaxTakesNewestLabel) {
  LabeledDigraph a(4, 0);
  a.set_edge(1, 0, 5);
  a.set_edge(2, 0, 2);
  LabeledDigraph b(4, 1);
  b.set_edge(1, 0, 3);   // older: a's 5 wins
  b.set_edge(2, 0, 6);   // newer: b's 6 wins
  b.set_edge(3, 1, 4);   // new edge
  a.merge_max(b);
  EXPECT_EQ(a.label(1, 0), 5);
  EXPECT_EQ(a.label(2, 0), 6);
  EXPECT_EQ(a.label(3, 1), 4);
  EXPECT_TRUE(a.has_node(3));
  EXPECT_TRUE(a.has_node(1));
}

TEST(LabeledDigraphTest, MergeMaxIsAssociativeInEffect) {
  // Folding merge_max pairwise equals the paper's batch max over
  // R_{i,j} (Lines 19-23).
  LabeledDigraph g1(3, 0), g2(3, 1), g3(3, 2);
  g1.set_edge(0, 1, 4);
  g2.set_edge(0, 1, 9);
  g3.set_edge(0, 1, 6);

  LabeledDigraph left(3, 0);
  left.merge_max(g1);
  left.merge_max(g2);
  left.merge_max(g3);

  LabeledDigraph right(3, 0);
  right.merge_max(g3);
  right.merge_max(g2);
  right.merge_max(g1);

  EXPECT_EQ(left.label(0, 1), 9);
  EXPECT_EQ(left, right);
}

TEST(LabeledDigraphTest, PurgeRemovesOldLabels) {
  LabeledDigraph g(4, 0);
  g.set_edge(1, 0, 2);
  g.set_edge(2, 0, 5);
  g.set_edge(3, 0, 8);
  g.purge_labels_up_to(5);  // Line 24 with r - n = 5
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 0));
  EXPECT_TRUE(g.has_edge(3, 0));
  // Nodes survive the purge (only Line 25 removes nodes).
  EXPECT_TRUE(g.has_node(1));
}

TEST(LabeledDigraphTest, PurgeWithNonpositiveCutoffIsNoop) {
  LabeledDigraph g(4, 0);
  g.set_edge(1, 0, 1);
  g.purge_labels_up_to(0);
  g.purge_labels_up_to(-3);
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(LabeledDigraphTest, PruneKeepsNodesReachingOwner) {
  LabeledDigraph g(6, 0);
  g.set_edge(1, 0, 3);  // 1 -> 0: kept
  g.set_edge(2, 1, 3);  // 2 -> 1 -> 0: kept
  g.set_edge(0, 3, 3);  // 3 only reachable FROM 0: pruned
  g.set_edge(4, 5, 3);  // disconnected pair: pruned
  g.prune_not_reaching(0);
  EXPECT_EQ(g.nodes(), ProcSet::of(6, {0, 1, 2}));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(4, 5));
}

TEST(LabeledDigraphTest, PruneKeepsOwnerAlways) {
  LabeledDigraph g(3, 1);
  g.prune_not_reaching(1);
  EXPECT_TRUE(g.has_node(1));
  EXPECT_EQ(g.nodes().count(), 1);
}

TEST(LabeledDigraphTest, PruneReturnsKeepSetAndRestrictReplaysIt) {
  LabeledDigraph g(6, 0);
  g.set_edge(1, 0, 3);
  g.set_edge(2, 1, 3);
  g.set_edge(0, 3, 3);
  g.set_edge(4, 5, 3);
  LabeledDigraph replay = g;

  const std::int64_t before = LabeledDigraph::reachability_computations();
  const ProcSet keep = g.prune_not_reaching(0);
  EXPECT_EQ(LabeledDigraph::reachability_computations(), before + 1);
  EXPECT_EQ(keep, ProcSet::of(6, {0, 1, 2}));

  // Replaying the keep-set on a structurally identical copy yields
  // the same graph without running another reachability fixpoint.
  replay.restrict_to_reaching(keep, 0);
  EXPECT_EQ(LabeledDigraph::reachability_computations(), before + 1);
  EXPECT_TRUE(replay == g);
}

TEST(GraphStructureTest, MatchesTracksNodesAndEdgesButNotLabels) {
  LabeledDigraph g(4, 0);
  g.set_edge(1, 0, 3);
  GraphStructure snapshot;
  EXPECT_FALSE(snapshot.matches(g));  // nothing captured yet
  snapshot.capture(g);
  EXPECT_TRUE(snapshot.matches(g));

  g.set_edge(1, 0, 9);  // label-only change: same structure
  EXPECT_TRUE(snapshot.matches(g));

  g.set_edge(2, 0, 9);  // new edge (and node): structure changed
  EXPECT_FALSE(snapshot.matches(g));
  snapshot.capture(g);
  EXPECT_TRUE(snapshot.matches(g));

  g.remove_edge(2, 0);  // edge gone, node 2 still present
  EXPECT_FALSE(snapshot.matches(g));
}

TEST(GraphStructureTest, MatchesRejectsDifferentUniverse) {
  LabeledDigraph small(3, 0);
  LabeledDigraph large(5, 0);
  GraphStructure snapshot;
  snapshot.capture(small);
  EXPECT_FALSE(snapshot.matches(large));
}

TEST(LabeledDigraphTest, PruneDropsEdgesBetweenKeptAndPruned) {
  LabeledDigraph g(5, 0);
  g.set_edge(1, 0, 2);
  g.set_edge(0, 2, 2);  // 2 cannot reach 0
  g.set_edge(1, 2, 2);  // edge from kept node into pruned node
  g.prune_not_reaching(0);
  EXPECT_FALSE(g.has_node(2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(LabeledDigraphTest, UnlabeledMatchesStructure) {
  LabeledDigraph g(4, 0);
  g.set_edge(1, 0, 3);
  g.set_edge(2, 1, 4);
  const Digraph u = g.unlabeled();
  EXPECT_EQ(u.nodes(), g.nodes());
  EXPECT_TRUE(u.has_edge(1, 0));
  EXPECT_TRUE(u.has_edge(2, 1));
  EXPECT_EQ(u.edge_count(), 2);
}

TEST(LabeledDigraphTest, StronglyConnectedCases) {
  LabeledDigraph g(4, 0);
  // Single node, no edges: trivially strongly connected.
  EXPECT_TRUE(g.strongly_connected());
  g.set_edge(1, 0, 1);
  EXPECT_FALSE(g.strongly_connected());
  g.set_edge(0, 1, 1);
  EXPECT_TRUE(g.strongly_connected());
  g.set_edge(2, 0, 1);  // 2 has no in-edge from the cycle
  EXPECT_FALSE(g.strongly_connected());
  g.set_edge(1, 2, 1);
  EXPECT_TRUE(g.strongly_connected());
}

TEST(LabeledDigraphTest, MinMaxLabel) {
  LabeledDigraph g(4, 0);
  g.set_edge(1, 0, 4);
  g.set_edge(2, 0, 9);
  g.set_edge(3, 0, 6);
  EXPECT_EQ(g.min_label(), 4);
  EXPECT_EQ(g.max_label(), 9);
}

TEST(LabeledDigraphTest, ToStringListsEdges) {
  LabeledDigraph g(3, 0);
  g.set_edge(1, 0, 2);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("p1 -2-> p0"), std::string::npos);
}

TEST(LabeledDigraphTest, SelfLoopCountsForConnectivityScan) {
  // A loner's graph: {p} with a self-loop (as in the Theorem 2 run).
  LabeledDigraph g(4, 2);
  g.set_edge(2, 2, 1);
  EXPECT_TRUE(g.strongly_connected());
  EXPECT_EQ(g.edge_count(), 1);
}

}  // namespace
}  // namespace sskel
