// Scale/robustness tests for the iterative Tarjan implementation: deep
// structures that would overflow the stack of a recursive version.
#include <gtest/gtest.h>

#include "graph/reach.hpp"
#include "graph/scc.hpp"

namespace sskel {
namespace {

TEST(SccScaleTest, LongChainDoesNotOverflow) {
  const ProcId n = 20000;
  Digraph g(n);
  for (ProcId p = 0; p + 1 < n; ++p) g.add_edge(p, p + 1);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), static_cast<int>(n));
}

TEST(SccScaleTest, GiantCycleIsOneComponent) {
  const ProcId n = 20000;
  Digraph g(n);
  for (ProcId p = 0; p < n; ++p) g.add_edge(p, (p + 1) % n);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), 1);
  EXPECT_EQ(scc.components[0].count(), static_cast<int>(n));
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(SccScaleTest, DeepNestingOfCycles) {
  // Chain of 2-cycles: (0,1) -> (2,3) -> (4,5) -> ...
  const ProcId n = 10000;
  Digraph g(n);
  for (ProcId p = 0; p + 1 < n; p += 2) {
    g.add_edge(p, p + 1);
    g.add_edge(p + 1, p);
    if (p + 2 < n) g.add_edge(p + 1, p + 2);
  }
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), static_cast<int>(n / 2));
  const auto roots = root_components(g);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], ProcSet::of(n, {0, 1}));
}

TEST(ReachScaleTest, LongChainReachability) {
  const ProcId n = 20000;
  Digraph g(n);
  for (ProcId p = 0; p + 1 < n; ++p) g.add_edge(p, p + 1);
  EXPECT_EQ(reachable_from(g, 0).count(), static_cast<int>(n));
  EXPECT_EQ(reaching(g, n - 1).count(), static_cast<int>(n));
  EXPECT_EQ(shortest_path_length(g, 0, n - 1), static_cast<int>(n) - 1);
}

}  // namespace
}  // namespace sskel
