// Tests for the 128-bit structure fingerprint feeding the intern
// table. The contract is deliberately modest: equal structures hash
// equal (determinism, label-blindness, seed-sensitivity), and distinct
// structures *almost always* hash different — the table tolerates
// collisions, so the tests only pin down the properties callers rely
// on, plus an empirical no-collision sweep over many small graphs.
#include "graph/fingerprint.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/labeled_digraph.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

Digraph random_graph(ProcId n, Rng& rng, int edge_percent) {
  Digraph g(n);
  for (ProcId u = 0; u < n; ++u) {
    for (ProcId v = 0; v < n; ++v) {
      if (rng.next_below(100) < static_cast<std::uint64_t>(edge_percent)) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

TEST(FingerprintTest, DeterministicForEqualStructures) {
  Rng rng(11);
  const Digraph g = random_graph(20, rng, 30);
  const Digraph copy = g;
  EXPECT_EQ(fingerprint_structure(g, 1), fingerprint_structure(copy, 1));
}

TEST(FingerprintTest, SensitiveToSingleEdge) {
  Digraph a(8);
  a.add_edge(1, 2);
  Digraph b(8);
  b.add_edge(1, 2);
  b.add_edge(2, 1);
  EXPECT_NE(fingerprint_structure(a, 1), fingerprint_structure(b, 1));
}

TEST(FingerprintTest, SensitiveToNodePresence) {
  // Same (empty) edge rows, different node sets.
  Digraph a(8);
  Digraph b(8);
  b.remove_node(3);
  EXPECT_NE(fingerprint_structure(a, 1), fingerprint_structure(b, 1));
}

TEST(FingerprintTest, SensitiveToUniverseSize) {
  // An empty graph over 8 nodes is not an empty graph over 9: n is
  // mixed first, so padding with absent nodes changes the print.
  Digraph a(8);
  for (ProcId p = 0; p < 8; ++p) a.remove_node(p);
  Digraph b(9);
  for (ProcId p = 0; p < 9; ++p) b.remove_node(p);
  EXPECT_NE(fingerprint_structure(a, 1), fingerprint_structure(b, 1));
}

TEST(FingerprintTest, SeedChangesFingerprint) {
  Rng rng(5);
  const Digraph g = random_graph(12, rng, 25);
  EXPECT_NE(fingerprint_structure(g, 1), fingerprint_structure(g, 2));
}

TEST(FingerprintTest, LabeledAndUnlabeledSameStructureAgree) {
  // The intern table keys on structure only: a LabeledDigraph and a
  // Digraph with the same nodes and edges must fingerprint equal no
  // matter the labels.
  LabeledDigraph lg(6, 0);
  lg.set_edge(0, 1, 3);
  lg.set_edge(1, 2, 7);
  lg.set_edge(2, 0, 12);
  Digraph g(6);
  for (ProcId p = 0; p < 6; ++p) {
    if (!lg.has_node(p)) g.remove_node(p);
  }
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_EQ(fingerprint_structure(lg, 9), fingerprint_structure(g, 9));

  // Relabeling alone must not move the fingerprint.
  LabeledDigraph relabeled = lg;
  relabeled.set_edge(0, 1, 40);
  EXPECT_EQ(fingerprint_structure(lg, 9),
            fingerprint_structure(relabeled, 9));
}

TEST(FingerprintTest, WordOrderMatters) {
  FingerprintBuilder ab(0);
  ab.mix_word(1);
  ab.mix_word(2);
  FingerprintBuilder ba(0);
  ba.mix_word(2);
  ba.mix_word(1);
  EXPECT_NE(ab.finish(), ba.finish());
}

TEST(FingerprintTest, NoCollisionsAcrossManyRandomGraphs) {
  // 2000 random graphs over mixed sizes/densities: any repeated
  // fingerprint must come from a structurally identical graph. A
  // genuine 128-bit collision in this sweep would be astronomically
  // unlikely — a failure here means the mixer lost entropy.
  struct Key {
    std::uint64_t lo;
    std::uint64_t hi;
    bool operator<(const Key& other) const {
      return lo != other.lo ? lo < other.lo : hi < other.hi;
    }
  };
  std::map<Key, Digraph> seen;
  Rng rng(0xf1f2);
  int duplicates = 0;
  for (int i = 0; i < 2000; ++i) {
    const ProcId n = static_cast<ProcId>(2 + rng.next_below(20));
    Digraph g = random_graph(n, rng,
                             5 + static_cast<int>(rng.next_below(90)));
    const Fingerprint128 fp = fingerprint_structure(g, 77);
    auto [it, inserted] = seen.try_emplace(Key{fp.lo, fp.hi}, g);
    if (!inserted) {
      ++duplicates;
      const Digraph& prev = it->second;
      ASSERT_EQ(prev.n(), g.n()) << "collision across sizes at i=" << i;
      EXPECT_EQ(prev.nodes(), g.nodes());
      for (ProcId u = 0; u < g.n(); ++u) {
        EXPECT_EQ(prev.out_neighbors(u), g.out_neighbors(u))
            << "row mismatch under equal fingerprint at i=" << i;
      }
    }
  }
  // Small graphs repeat structurally; just make sure the sweep did not
  // degenerate into one bucket.
  EXPECT_LT(duplicates, 2000);
}

}  // namespace
}  // namespace sskel
