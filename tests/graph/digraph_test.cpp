// Unit tests for Digraph.
#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g(5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(DigraphTest, CompleteGraph) {
  const Digraph g = Digraph::complete(4);
  EXPECT_EQ(g.edge_count(), 16);  // self-loops included
  for (ProcId q = 0; q < 4; ++q) {
    for (ProcId p = 0; p < 4; ++p) EXPECT_TRUE(g.has_edge(q, p));
  }
}

TEST(DigraphTest, SelfLoopsOnly) {
  const Digraph g = Digraph::self_loops_only(4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(DigraphTest, AddRemoveEdgeMirrorsInOut) {
  Digraph g(4);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_TRUE(g.out_neighbors(1).contains(2));
  EXPECT_TRUE(g.in_neighbors(2).contains(1));
  g.remove_edge(1, 2);
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.out_neighbors(1).empty());
  EXPECT_TRUE(g.in_neighbors(2).empty());
}

TEST(DigraphTest, RemoveNodeDropsIncidentEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.remove_node(1);
  EXPECT_FALSE(g.has_node(1));
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_TRUE(g.out_neighbors(0).empty());
  EXPECT_TRUE(g.in_neighbors(2).empty());
}

TEST(DigraphTest, IntersectionOfEdges) {
  Digraph a(4);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  a.add_edge(2, 3);
  Digraph b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  a.intersect_with(b);
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_TRUE(a.has_edge(2, 3));
  EXPECT_FALSE(a.has_edge(1, 2));
  EXPECT_FALSE(a.has_edge(3, 0));
  EXPECT_EQ(a.edge_count(), 2);
}

TEST(DigraphTest, IntersectionRespectsNodes) {
  Digraph a(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  Digraph b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.remove_node(3);
  a.intersect_with(b);
  EXPECT_FALSE(a.has_node(3));
  EXPECT_FALSE(a.has_edge(2, 3));
  EXPECT_TRUE(a.has_edge(0, 1));
}

TEST(DigraphTest, UnionOfEdges) {
  Digraph a(3);
  a.add_edge(0, 1);
  Digraph b(3);
  b.add_edge(1, 2);
  a.union_with(b);
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_TRUE(a.has_edge(1, 2));
}

TEST(DigraphTest, InducedSubgraph) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const Digraph sub = g.induced(ProcSet::of(5, {0, 1, 2}));
  EXPECT_EQ(sub.node_count(), 3);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_node(3));
  EXPECT_EQ(sub.edge_count(), 2);
}

TEST(DigraphTest, SubgraphRelation) {
  Digraph small(4);
  small.add_edge(0, 1);
  Digraph big = small;
  big.add_edge(1, 2);
  EXPECT_TRUE(small.is_subgraph_of(big));
  EXPECT_FALSE(big.is_subgraph_of(small));
  EXPECT_TRUE(big.is_subgraph_of(big));
}

TEST(DigraphTest, AddSelfLoops) {
  Digraph g(3);
  g.remove_node(2);
  g.add_self_loops();
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(1, 1));
  EXPECT_FALSE(g.has_edge(2, 2));  // absent node gets no loop
}

TEST(DigraphTest, EqualityAndDot) {
  Digraph a(3);
  a.add_edge(0, 1);
  Digraph b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2);
  EXPECT_NE(a, b);

  const std::string dot = b.to_dot("g");
  EXPECT_NE(dot.find("p0 -> p1"), std::string::npos);
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
}

TEST(DigraphTest, SkeletonIntersectionChainIsMonotone) {
  // Property (1) of the paper: intersecting any sequence of graphs
  // yields a monotonically shrinking skeleton.
  Digraph skel = Digraph::complete(6);
  Digraph round1 = Digraph::complete(6);
  round1.remove_edge(0, 3);
  Digraph round2 = Digraph::complete(6);
  round2.remove_edge(1, 4);

  Digraph prev = skel;
  for (const Digraph& g : {round1, round2, round1}) {
    skel.intersect_with(g);
    EXPECT_TRUE(skel.is_subgraph_of(prev));
    prev = skel;
  }
  EXPECT_FALSE(skel.has_edge(0, 3));
  EXPECT_FALSE(skel.has_edge(1, 4));
  EXPECT_EQ(skel.edge_count(), 34);
}

TEST(DigraphTest, IntersectWithReportsWhetherAnythingShrank) {
  Digraph a = Digraph::complete(4);
  EXPECT_FALSE(a.intersect_with(Digraph::complete(4)));  // identical

  Digraph b = Digraph::complete(4);
  b.remove_edge(0, 1);
  EXPECT_TRUE(a.intersect_with(b));   // removed exactly (0 -> 1)
  EXPECT_FALSE(a.intersect_with(b));  // already a subgraph: no-op
  EXPECT_FALSE(a.has_edge(0, 1));
}

TEST(DigraphTest, IntersectWithReportsNodeRemoval) {
  Digraph a = Digraph::self_loops_only(3);
  Digraph b = Digraph::self_loops_only(3);
  b.remove_node(2);
  EXPECT_TRUE(a.intersect_with(b));
  EXPECT_FALSE(a.nodes().contains(2));
  EXPECT_FALSE(a.intersect_with(b));
}

}  // namespace
}  // namespace sskel
