// Unit tests for Digraph.
#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sskel {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g(5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(DigraphTest, CompleteGraph) {
  const Digraph g = Digraph::complete(4);
  EXPECT_EQ(g.edge_count(), 16);  // self-loops included
  for (ProcId q = 0; q < 4; ++q) {
    for (ProcId p = 0; p < 4; ++p) EXPECT_TRUE(g.has_edge(q, p));
  }
}

TEST(DigraphTest, SelfLoopsOnly) {
  const Digraph g = Digraph::self_loops_only(4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(DigraphTest, AddRemoveEdgeMirrorsInOut) {
  Digraph g(4);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_TRUE(g.out_neighbors(1).contains(2));
  EXPECT_TRUE(g.in_neighbors(2).contains(1));
  g.remove_edge(1, 2);
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.out_neighbors(1).empty());
  EXPECT_TRUE(g.in_neighbors(2).empty());
}

TEST(DigraphTest, RemoveNodeDropsIncidentEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.remove_node(1);
  EXPECT_FALSE(g.has_node(1));
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_TRUE(g.out_neighbors(0).empty());
  EXPECT_TRUE(g.in_neighbors(2).empty());
}

TEST(DigraphTest, IntersectionOfEdges) {
  Digraph a(4);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  a.add_edge(2, 3);
  Digraph b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  a.intersect_with(b);
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_TRUE(a.has_edge(2, 3));
  EXPECT_FALSE(a.has_edge(1, 2));
  EXPECT_FALSE(a.has_edge(3, 0));
  EXPECT_EQ(a.edge_count(), 2);
}

TEST(DigraphTest, IntersectionRespectsNodes) {
  Digraph a(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  Digraph b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.remove_node(3);
  a.intersect_with(b);
  EXPECT_FALSE(a.has_node(3));
  EXPECT_FALSE(a.has_edge(2, 3));
  EXPECT_TRUE(a.has_edge(0, 1));
}

TEST(DigraphTest, UnionOfEdges) {
  Digraph a(3);
  a.add_edge(0, 1);
  Digraph b(3);
  b.add_edge(1, 2);
  a.union_with(b);
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_TRUE(a.has_edge(1, 2));
}

TEST(DigraphTest, InducedSubgraph) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const Digraph sub = g.induced(ProcSet::of(5, {0, 1, 2}));
  EXPECT_EQ(sub.node_count(), 3);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_node(3));
  EXPECT_EQ(sub.edge_count(), 2);
}

TEST(DigraphTest, SubgraphRelation) {
  Digraph small(4);
  small.add_edge(0, 1);
  Digraph big = small;
  big.add_edge(1, 2);
  EXPECT_TRUE(small.is_subgraph_of(big));
  EXPECT_FALSE(big.is_subgraph_of(small));
  EXPECT_TRUE(big.is_subgraph_of(big));
}

TEST(DigraphTest, AddSelfLoops) {
  Digraph g(3);
  g.remove_node(2);
  g.add_self_loops();
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(1, 1));
  EXPECT_FALSE(g.has_edge(2, 2));  // absent node gets no loop
}

TEST(DigraphTest, EqualityAndDot) {
  Digraph a(3);
  a.add_edge(0, 1);
  Digraph b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2);
  EXPECT_NE(a, b);

  const std::string dot = b.to_dot("g");
  EXPECT_NE(dot.find("p0 -> p1"), std::string::npos);
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
}

TEST(DigraphTest, SkeletonIntersectionChainIsMonotone) {
  // Property (1) of the paper: intersecting any sequence of graphs
  // yields a monotonically shrinking skeleton.
  Digraph skel = Digraph::complete(6);
  Digraph round1 = Digraph::complete(6);
  round1.remove_edge(0, 3);
  Digraph round2 = Digraph::complete(6);
  round2.remove_edge(1, 4);

  Digraph prev = skel;
  for (const Digraph& g : {round1, round2, round1}) {
    skel.intersect_with(g);
    EXPECT_TRUE(skel.is_subgraph_of(prev));
    prev = skel;
  }
  EXPECT_FALSE(skel.has_edge(0, 3));
  EXPECT_FALSE(skel.has_edge(1, 4));
  EXPECT_EQ(skel.edge_count(), 34);
}

TEST(DigraphTest, IntersectWithReportsWhetherAnythingShrank) {
  Digraph a = Digraph::complete(4);
  EXPECT_FALSE(a.intersect_with(Digraph::complete(4)));  // identical

  Digraph b = Digraph::complete(4);
  b.remove_edge(0, 1);
  EXPECT_TRUE(a.intersect_with(b));   // removed exactly (0 -> 1)
  EXPECT_FALSE(a.intersect_with(b));  // already a subgraph: no-op
  EXPECT_FALSE(a.has_edge(0, 1));
}

TEST(DigraphTest, IntersectWithReportsNodeRemoval) {
  Digraph a = Digraph::self_loops_only(3);
  Digraph b = Digraph::self_loops_only(3);
  b.remove_node(2);
  EXPECT_TRUE(a.intersect_with(b));
  EXPECT_FALSE(a.nodes().contains(2));
  EXPECT_FALSE(a.intersect_with(b));
}

TEST(DigraphTest, OrInRows64MatchesPerEdgeInsertion) {
  // The transpose-based bulk landing must agree with add_edge in BOTH
  // directions (in_ and out_ rows) on random asymmetric matrices.
  // Symmetric graphs cannot catch an orientation bug: a transposed
  // edge set looks identical there.
  Rng rng(0x64646464);
  for (const ProcId n : {1, 3, 31, 64}) {
    std::vector<std::uint64_t> rows(static_cast<std::size_t>(n), 0);
    const std::uint64_t row_mask =
        n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
    Digraph expected(n);
    for (ProcId p = 0; p < n; ++p) {
      std::uint64_t bits = rng.next_u64() & row_mask;
      rows[static_cast<std::size_t>(p)] = bits;
      while (bits != 0) {
        const auto q = static_cast<ProcId>(std::countr_zero(bits));
        bits &= bits - 1;
        expected.add_edge(q, p);  // bit q of rows[p] = edge q -> p
      }
    }
    Digraph actual(n);
    actual.or_in_rows64(rows.data());
    EXPECT_EQ(actual.edge_count(), expected.edge_count()) << "n=" << n;
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        EXPECT_EQ(actual.has_edge(q, p), expected.has_edge(q, p))
            << "n=" << n << " edge " << q << "->" << p;
      }
      EXPECT_EQ(actual.in_neighbors(q), expected.in_neighbors(q));
      EXPECT_EQ(actual.out_neighbors(q), expected.out_neighbors(q));
    }
  }
}

TEST(DigraphTest, OrInRows64SkewRow) {
  // A down-link-style asymmetric shape: only p=2 hears anyone. The
  // anti-diagonal mirror of this graph is different, so this pins the
  // transpose orientation directly.
  Digraph g(5);
  std::vector<std::uint64_t> rows(5, 0);
  rows[2] = 0b11011;  // everyone but q=2 reaches p=2
  g.or_in_rows64(rows.data());
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(4, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(2, 0));  // the mirrored edge must NOT exist
  EXPECT_FALSE(g.has_edge(2, 4));
}

TEST(DigraphTest, OrInRows64AccumulatesLikeOr) {
  // Repeated landings OR into the existing edge set.
  Digraph g(3);
  std::vector<std::uint64_t> rows(3, 0);
  rows[0] = 0b001;  // 0 -> 0
  g.or_in_rows64(rows.data());
  rows[0] = 0b100;  // 2 -> 0
  rows[1] = 0b010;  // 1 -> 1
  g.or_in_rows64(rows.data());
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.has_edge(1, 1));
}

TEST(DigraphTest, ResetRestoresEmptyEdgesFullNodes) {
  Digraph g = Digraph::complete(4);
  g.remove_node(1);
  g.reset();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g, Digraph(4));
}

TEST(DigraphTest, AddInEdgesBulkMatchesPerEdge) {
  const ProcId n = 70;  // crosses a word boundary
  ProcSet senders(n);
  for (ProcId q = 0; q < n; q += 3) senders.insert(q);
  Digraph bulk(n);
  bulk.add_in_edges(/*p=*/65, senders);
  Digraph scalar(n);
  for (ProcId q : senders) scalar.add_edge(q, 65);
  EXPECT_EQ(bulk, scalar);
}

}  // namespace
}  // namespace sskel
