// Tests for IncrementalScc, the decremental SCC maintainer.
//
// The maintainer's contract: after any sequence of seed/apply calls,
// its decomposition is *equivalent* to a fresh Tarjan run on the same
// graph — identical partition into components, identical root set, and
// a valid reverse-topological ordering of the condensation. The
// component *permutation* may differ from Tarjan's (splicing preserves
// validity, not Tarjan's exact emission order), so the randomized
// equivalence tests compare semantics, never raw vectors.
#include "graph/inc_scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/scc.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

/// Sorted-by-first-member view of a component list, for set-equality
/// comparison that ignores emission order.
std::vector<ProcSet> sorted_components(const std::vector<ProcSet>& comps) {
  std::vector<ProcSet> out = comps;
  std::sort(out.begin(), out.end(),
            [](const ProcSet& a, const ProcSet& b) {
              return a.first() < b.first();
            });
  return out;
}

std::vector<ProcSet> root_sets(const SccDecomposition& scc,
                               const std::vector<int>& indices) {
  std::vector<ProcSet> out;
  for (int idx : indices) {
    out.push_back(scc.components[static_cast<std::size_t>(idx)]);
  }
  return sorted_components(out);
}

/// Asserts that the maintainer's decomposition is equivalent to a
/// fresh Tarjan run on g: same partition, same roots, internally
/// consistent component_of, and a valid reverse-topological order.
void expect_equivalent(const Digraph& g, const IncrementalScc& inc,
                       const std::string& context) {
  SCOPED_TRACE(context);
  const SccDecomposition& got = inc.decomposition();
  const SccDecomposition want = strongly_connected_components(g);

  // Same partition (order-insensitive).
  ASSERT_EQ(got.count(), want.count());
  EXPECT_EQ(sorted_components(got.components),
            sorted_components(want.components));

  // component_of is consistent with the member sets and covers exactly
  // the present nodes.
  ASSERT_EQ(got.component_of.size(), static_cast<std::size_t>(g.n()));
  for (ProcId p = 0; p < g.n(); ++p) {
    const int c = got.component_of[static_cast<std::size_t>(p)];
    if (!g.has_node(p)) {
      EXPECT_EQ(c, -1) << "absent node p" << p << " has a component";
      continue;
    }
    ASSERT_GE(c, 0) << "present node p" << p << " unassigned";
    ASSERT_LT(c, got.count());
    EXPECT_TRUE(got.components[static_cast<std::size_t>(c)].contains(p));
  }

  // Valid reverse topological order: an edge C_a -> C_b implies b < a.
  for (ProcId u : g.nodes()) {
    for (ProcId v : g.out_neighbors(u)) {
      const int cu = got.component_of[static_cast<std::size_t>(u)];
      const int cv = got.component_of[static_cast<std::size_t>(v)];
      if (cu != cv) {
        EXPECT_LT(cv, cu) << "edge p" << u << "->p" << v
                          << " violates reverse-topological order";
      }
    }
  }

  // Same root components.
  EXPECT_EQ(root_sets(got, inc.root_indices()),
            root_sets(want, root_component_indices(g, want)));
}

Digraph random_graph(ProcId n, Rng& rng, int edge_percent) {
  Digraph g(n);
  g.add_self_loops();
  for (ProcId u = 0; u < n; ++u) {
    for (ProcId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (rng.next_below(100) < static_cast<std::uint64_t>(edge_percent)) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

std::vector<std::pair<ProcId, ProcId>> present_edges(const Digraph& g) {
  std::vector<std::pair<ProcId, ProcId>> edges;
  for (ProcId u : g.nodes()) {
    for (ProcId v : g.out_neighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

/// Removes node p from g and records the removal in `delta` using the
/// same convention Digraph::intersect_collect emits: the node itself
/// plus every incident edge (out-edges from p's row, in-edges as
/// removed out-edges of the surviving sources).
void remove_node_with_delta(Digraph& g, ProcId p, GraphDelta& delta) {
  delta.removed_nodes.push_back(p);
  for (ProcId q : g.out_neighbors(p)) delta.removed_edges.push_back({p, q});
  for (ProcId q : g.in_neighbors(p)) {
    if (q != p) delta.removed_edges.push_back({q, p});
  }
  g.remove_node(p);
}

// --- targeted unit tests ---------------------------------------------------

TEST(IncSccTest, SeedMatchesTarjan) {
  Rng rng(7);
  const Digraph g = random_graph(12, rng, 25);
  IncrementalScc inc;
  inc.seed(g);
  EXPECT_TRUE(inc.seeded());
  expect_equivalent(g, inc, "seed");
}

TEST(IncSccTest, CycleSplitsIntoChain) {
  // 0 -> 1 -> 2 -> 3 -> 0: removing one edge shatters the 4-cycle into
  // four singleton components, and the unique root moves to the tail.
  Digraph g(4);
  for (ProcId p = 0; p < 4; ++p) g.add_edge(p, (p + 1) % 4);
  IncrementalScc inc;
  inc.seed(g);
  ASSERT_EQ(inc.decomposition().count(), 1);

  GraphDelta delta;
  delta.removed_edges.push_back({3, 0});
  g.remove_edge(3, 0);
  inc.apply(g, delta);
  expect_equivalent(g, inc, "after cycle cut");
  EXPECT_EQ(inc.decomposition().count(), 4);
  EXPECT_EQ(inc.splitting_applies(), 1);
}

TEST(IncSccTest, InterComponentRemovalOnlyPatchesRoots) {
  // Two 2-cycles joined by a bridge; cutting the bridge cannot split
  // anything but promotes the downstream component to a root.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 2);
  IncrementalScc inc;
  inc.seed(g);
  ASSERT_EQ(inc.decomposition().count(), 2);
  ASSERT_EQ(inc.root_indices().size(), 1u);

  GraphDelta delta;
  delta.removed_edges.push_back({1, 2});
  g.remove_edge(1, 2);
  inc.apply(g, delta);
  expect_equivalent(g, inc, "after bridge cut");
  EXPECT_EQ(inc.decomposition().count(), 2);
  EXPECT_EQ(inc.root_indices().size(), 2u);
  // No component lost an internal edge, so nothing was re-decomposed.
  EXPECT_EQ(inc.components_resolved(), 0);
  EXPECT_EQ(inc.splitting_applies(), 0);
  // Both components survived in place.
  for (int origin : inc.origin_of()) EXPECT_GE(origin, 0);
}

TEST(IncSccTest, NodeRemovalSplitsItsComponent) {
  // 5-cycle; removing the middle node leaves a 4-chain of singletons.
  Digraph g(5);
  for (ProcId p = 0; p < 5; ++p) g.add_edge(p, (p + 1) % 5);
  IncrementalScc inc;
  inc.seed(g);

  GraphDelta delta;
  remove_node_with_delta(g, 2, delta);
  inc.apply(g, delta);
  expect_equivalent(g, inc, "after node removal");
  EXPECT_EQ(inc.decomposition().count(), 4);
}

TEST(IncSccTest, SingleEdgeFastPathKeepsChordedCycle) {
  // 6-cycle plus chord 0 -> 3. Removing the chord loses one internal
  // edge but the cycle keeps the component strongly connected: the
  // targeted BFS must keep it whole without a full re-decomposition.
  Digraph g(6);
  for (ProcId p = 0; p < 6; ++p) g.add_edge(p, (p + 1) % 6);
  g.add_edge(0, 3);
  IncrementalScc inc;
  inc.seed(g);
  ASSERT_EQ(inc.decomposition().count(), 1);

  GraphDelta delta;
  delta.removed_edges.push_back({0, 3});
  g.remove_edge(0, 3);
  inc.apply(g, delta);
  expect_equivalent(g, inc, "after chord cut");
  EXPECT_EQ(inc.decomposition().count(), 1);
  EXPECT_EQ(inc.targeted_checks(), 1);
  EXPECT_EQ(inc.targeted_hits(), 1);
  // The hit replaced the local FW-BW pass entirely.
  EXPECT_EQ(inc.components_resolved(), 0);
  // Internal edges changed, so the carried component must not claim an
  // origin (consumers would reuse a stale induced subgraph).
  ASSERT_EQ(inc.origin_of().size(), 1u);
  EXPECT_EQ(inc.origin_of()[0], -1);
}

TEST(IncSccTest, SingleEdgeFastPathMissFallsThrough) {
  // Plain 4-cycle: removing one edge disconnects it, so the targeted
  // check misses and the full local decomposition still runs.
  Digraph g(4);
  for (ProcId p = 0; p < 4; ++p) g.add_edge(p, (p + 1) % 4);
  IncrementalScc inc;
  inc.seed(g);

  GraphDelta delta;
  delta.removed_edges.push_back({3, 0});
  g.remove_edge(3, 0);
  inc.apply(g, delta);
  expect_equivalent(g, inc, "after cycle cut");
  EXPECT_EQ(inc.decomposition().count(), 4);
  EXPECT_EQ(inc.targeted_checks(), 1);
  EXPECT_EQ(inc.targeted_hits(), 0);
  EXPECT_EQ(inc.components_resolved(), 1);
}

TEST(IncSccTest, SingleEdgeFastPathHandlesSelfLoop) {
  // Deleting a self-loop inside a larger SCC is a single internal edge
  // whose tail trivially "reaches" its head (closure contains the
  // start); the component must survive intact.
  Digraph g(3);
  g.add_self_loops();
  for (ProcId p = 0; p < 3; ++p) g.add_edge(p, (p + 1) % 3);
  IncrementalScc inc;
  inc.seed(g);
  ASSERT_EQ(inc.decomposition().count(), 1);

  GraphDelta delta;
  delta.removed_edges.push_back({1, 1});
  g.remove_edge(1, 1);
  inc.apply(g, delta);
  expect_equivalent(g, inc, "after self-loop cut");
  EXPECT_EQ(inc.decomposition().count(), 1);
  EXPECT_EQ(inc.targeted_hits(), 1);
}

TEST(IncSccTest, FastPathDisabledMatchesEnabled) {
  // The toggle changes work counters only, never the decomposition.
  Digraph g(6);
  for (ProcId p = 0; p < 6; ++p) g.add_edge(p, (p + 1) % 6);
  g.add_edge(0, 3);
  Digraph g2 = g;
  IncrementalScc fast;
  IncrementalScc slow;
  slow.set_single_edge_fastpath(false);
  fast.seed(g);
  slow.seed(g2);

  GraphDelta delta;
  delta.removed_edges.push_back({0, 3});
  g.remove_edge(0, 3);
  g2.remove_edge(0, 3);
  fast.apply(g, delta);
  slow.apply(g2, delta);
  expect_equivalent(g, fast, "fastpath on");
  expect_equivalent(g2, slow, "fastpath off");
  EXPECT_EQ(slow.targeted_checks(), 0);
  EXPECT_EQ(slow.components_resolved(), 1);
}

TEST(IncSccTest, BatchedDeltaComposes) {
  // Several rounds of shrinkage folded into one apply() must land on
  // the same decomposition as applying them one by one.
  Rng rng(99);
  Digraph g = random_graph(14, rng, 30);
  Digraph g_batched = g;
  IncrementalScc step_by_step;
  IncrementalScc batched;
  step_by_step.seed(g);
  batched.seed(g_batched);

  GraphDelta batch;
  for (int round = 0; round < 4; ++round) {
    auto edges = present_edges(g);
    if (edges.empty()) break;
    GraphDelta single;
    for (int j = 0; j < 3 && !edges.empty(); ++j) {
      const auto pick = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(edges.size())));
      const auto [u, v] = edges[pick];
      edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(pick));
      if (!g.has_edge(u, v)) continue;
      g.remove_edge(u, v);
      g_batched.remove_edge(u, v);
      single.removed_edges.push_back({u, v});
      batch.removed_edges.push_back({u, v});
    }
    step_by_step.apply(g, single);
  }
  batched.apply(g_batched, batch);
  expect_equivalent(g, step_by_step, "step-by-step");
  expect_equivalent(g_batched, batched, "batched");
}

TEST(IncSccTest, EmptyDeltaIsNoOp) {
  Rng rng(3);
  const Digraph g = random_graph(10, rng, 20);
  IncrementalScc inc;
  inc.seed(g);
  const GraphDelta empty;
  inc.apply(g, empty);
  expect_equivalent(g, inc, "empty delta");
  EXPECT_EQ(inc.components_resolved(), 0);
}

// --- randomized equivalence ------------------------------------------------

/// One random deletion sequence: seed on a random graph, then delete
/// random edge batches (occasionally a whole node) down to the empty
/// graph, checking equivalence against a fresh Tarjan run — and the
/// subdivide-only property — at every step.
void run_random_sequence(std::uint64_t seed, ProcId n,
                         bool single_edge_fastpath = true) {
  Rng rng(seed);
  Digraph g = random_graph(
      n, rng, 10 + static_cast<int>(rng.next_below(40)));
  IncrementalScc inc;
  inc.set_single_edge_fastpath(single_edge_fastpath);
  inc.seed(g);
  expect_equivalent(g, inc, "seed (seed=" + std::to_string(seed) + ")");

  for (int step = 0; step < 64; ++step) {
    auto edges = present_edges(g);
    if (edges.empty()) break;
    const std::vector<ProcSet> before = inc.decomposition().components;

    GraphDelta delta;
    if (rng.next_below(8) == 0 && !g.nodes().empty()) {
      // Node removal: pick a uniformly random present node.
      ProcId victim = g.nodes().first();
      const auto skip = rng.next_below(
          static_cast<std::uint64_t>(g.nodes().count()));
      for (std::uint64_t i = 0; i < skip; ++i) {
        victim = g.nodes().next_after(victim);
      }
      remove_node_with_delta(g, victim, delta);
    } else {
      const auto batch = 1 + rng.next_below(3);
      for (std::uint64_t j = 0; j < batch && !edges.empty(); ++j) {
        const auto pick = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(edges.size())));
        const auto [u, v] = edges[pick];
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(pick));
        g.remove_edge(u, v);
        delta.removed_edges.push_back({u, v});
      }
    }

    inc.apply(g, delta);
    expect_equivalent(g, inc,
                      "seed=" + std::to_string(seed) +
                          " step=" + std::to_string(step));
    if (::testing::Test::HasFailure()) return;

    // Subdivide-only: every new component is contained in exactly one
    // old component (shrink-only graphs never merge components).
    for (const ProcSet& comp : inc.decomposition().components) {
      int containers = 0;
      for (const ProcSet& old : before) {
        if (comp.is_subset_of(old)) ++containers;
      }
      EXPECT_EQ(containers, 1)
          << "component not a subdivision at seed=" << seed
          << " step=" << step;
    }
  }
}

TEST(IncSccRandomizedTest, EquivalentToTarjanOnRandomDeletionSequences) {
  // 250 seeds x 4 sizes = 1000 random deletion sequences, each checked
  // against the Tarjan oracle at every step.
  const ProcId sizes[] = {5, 9, 16, 24};
  for (ProcId n : sizes) {
    for (std::uint64_t seed = 0; seed < 250; ++seed) {
      run_random_sequence(mix_seed(seed, static_cast<std::uint64_t>(n)), n);
      if (::testing::Test::HasFailure()) return;  // first failure is enough
    }
  }
}

TEST(IncSccRandomizedTest, EquivalentWithFastPathDisabled) {
  // Same oracle check with the single-edge fast path off, so the
  // full-decomposition branch keeps its own randomized coverage.
  const ProcId sizes[] = {5, 9, 16, 24};
  for (ProcId n : sizes) {
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      run_random_sequence(
          mix_seed(seed ^ 0xfa57ULL, static_cast<std::uint64_t>(n)), n,
          /*single_edge_fastpath=*/false);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

}  // namespace
}  // namespace sskel
