// Unit tests for SCC decomposition, condensation and root components.
#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace sskel {
namespace {

Digraph cycle_graph(ProcId n) {
  Digraph g(n);
  for (ProcId p = 0; p < n; ++p) g.add_edge(p, (p + 1) % n);
  return g;
}

TEST(SccTest, SingleNodeIsItsOwnComponent) {
  Digraph g(1);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), 1);
  EXPECT_EQ(scc.components[0], ProcSet::singleton(1, 0));
}

TEST(SccTest, CycleIsOneComponent) {
  const SccDecomposition scc = strongly_connected_components(cycle_graph(5));
  EXPECT_EQ(scc.count(), 1);
  EXPECT_EQ(scc.components[0].count(), 5);
}

TEST(SccTest, ChainIsAllSingletons) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), 4);
  for (const ProcSet& comp : scc.components) EXPECT_EQ(comp.count(), 1);
}

TEST(SccTest, TwoCyclesWithBridge) {
  // 0<->1 -> 2<->3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), 2);
  const int c0 = scc.component_of[0];
  EXPECT_EQ(scc.component_of[1], c0);
  const int c2 = scc.component_of[2];
  EXPECT_EQ(scc.component_of[3], c2);
  EXPECT_NE(c0, c2);
}

TEST(SccTest, ReverseTopologicalOrder) {
  // Components are emitted callees-first: an edge C_a -> C_b implies
  // b < a in the emission order.
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // comp A
  g.add_edge(2, 3);
  g.add_edge(3, 2);  // comp B
  g.add_edge(1, 2);  // A -> B
  g.add_edge(3, 4);  // B -> {4}
  g.add_edge(4, 5);  // {4} -> {5}
  const SccDecomposition scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count(), 4);
  for (ProcId q = 0; q < 6; ++q) {
    for (ProcId p : g.out_neighbors(q)) {
      const int a = scc.component_of[static_cast<std::size_t>(q)];
      const int b = scc.component_of[static_cast<std::size_t>(p)];
      if (a != b) {
        EXPECT_LT(b, a);
      }
    }
  }
}

TEST(SccTest, AbsentNodesIgnored) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.remove_node(4);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_of[4], -1);
  EXPECT_EQ(scc.count(), 4);
}

TEST(CondensationTest, ContractsToDag) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(3, 4);
  const SccDecomposition scc = strongly_connected_components(g);
  const Digraph dag = condensation(g, scc);
  EXPECT_EQ(dag.n(), scc.count());
  // A condensation is acyclic: every SCC of it is a singleton.
  const SccDecomposition dag_scc = strongly_connected_components(dag);
  EXPECT_EQ(dag_scc.count(), dag.node_count());
  // No self-loops in the condensation.
  for (ProcId c : dag.nodes()) EXPECT_FALSE(dag.has_edge(c, c));
}

TEST(RootComponentTest, CycleWithTailHasOneRoot) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<ProcSet> roots = root_components(g);
  ASSERT_EQ(roots.size(), 2u);  // {0,1} and the isolated {4}
  // Find the cycle root.
  const bool has_cycle_root =
      std::any_of(roots.begin(), roots.end(), [](const ProcSet& r) {
        return r == ProcSet::of(5, {0, 1});
      });
  EXPECT_TRUE(has_cycle_root);
}

TEST(RootComponentTest, PaperFigure1Shape) {
  // Fig. 1b: root components {p1,p2} and {p3,p4,p5}; p6 a follower.
  Digraph g(6);
  g.add_self_loops();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  g.add_edge(1, 5);
  g.add_edge(4, 5);
  std::vector<ProcSet> roots = root_components(g);
  ASSERT_EQ(roots.size(), 2u);
  std::sort(roots.begin(), roots.end(),
            [](const ProcSet& a, const ProcSet& b) {
              return a.first() < b.first();
            });
  EXPECT_EQ(roots[0], ProcSet::of(6, {0, 1}));
  EXPECT_EQ(roots[1], ProcSet::of(6, {2, 3, 4}));
}

TEST(RootComponentTest, EveryNonemptyGraphHasARoot) {
  // Lemma 11's first step: the condensation is a DAG, so a root
  // component always exists. Randomized property check.
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const ProcId n = static_cast<ProcId>(2 + rng.next_below(10));
    Digraph g(n);
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.3)) g.add_edge(q, p);
      }
    }
    EXPECT_GE(root_components(g).size(), 1u);
  }
}

TEST(ComponentOfTest, ReturnsContainingComponent) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  EXPECT_EQ(component_of(g, 0), ProcSet::of(4, {0, 1}));
  EXPECT_EQ(component_of(g, 3), ProcSet::singleton(4, 3));
  g.remove_node(2);
  EXPECT_TRUE(component_of(g, 2).empty());
}

TEST(IsStronglyConnectedTest, Cases) {
  EXPECT_TRUE(is_strongly_connected(cycle_graph(4)));
  EXPECT_TRUE(is_strongly_connected(Digraph::complete(3)));
  // Single node, no edges: trivially strongly connected.
  EXPECT_TRUE(is_strongly_connected(Digraph(1)));
  Digraph chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_FALSE(is_strongly_connected(chain));
  // Empty node set: not strongly connected by convention.
  Digraph empty(2);
  empty.remove_node(0);
  empty.remove_node(1);
  EXPECT_FALSE(is_strongly_connected(empty));
}

TEST(SccPropertyTest, ComponentsPartitionNodes) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const ProcId n = static_cast<ProcId>(3 + rng.next_below(20));
    Digraph g(n);
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.2)) g.add_edge(q, p);
      }
    }
    const SccDecomposition scc = strongly_connected_components(g);
    ProcSet covered(n);
    for (const ProcSet& comp : scc.components) {
      EXPECT_FALSE(covered.intersects(comp));  // disjoint
      covered |= comp;
    }
    EXPECT_EQ(covered, g.nodes());  // covering
    // component_of agrees with membership.
    for (ProcId p = 0; p < n; ++p) {
      const int idx = scc.component_of[static_cast<std::size_t>(p)];
      ASSERT_GE(idx, 0);
      EXPECT_TRUE(scc.components[static_cast<std::size_t>(idx)].contains(p));
    }
  }
}

}  // namespace
}  // namespace sskel
