// Randomized cross-checks of the graph kernels against simple oracles.
//
// The SCC/condensation/reachability code is the computational core of
// the whole reproduction (Line 28 decides on its output), so we verify
// it against an independent O(n^3) Floyd-Warshall-style oracle across
// random graphs of varying density.
#include <gtest/gtest.h>

#include <vector>

#include "graph/reach.hpp"
#include "graph/scc.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

Digraph random_graph(Rng& rng, ProcId n, double density) {
  Digraph g(n);
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (rng.next_bool(density)) g.add_edge(q, p);
    }
  }
  // Occasionally remove nodes to exercise partial universes.
  for (ProcId p = 0; p < n; ++p) {
    if (rng.next_bool(0.1)) g.remove_node(p);
  }
  return g;
}

/// O(n^3) transitive closure oracle: reach[q][p] = q reaches p.
std::vector<std::vector<bool>> closure_oracle(const Digraph& g) {
  const auto n = static_cast<std::size_t>(g.n());
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (ProcId q : g.nodes()) {
    reach[static_cast<std::size_t>(q)][static_cast<std::size_t>(q)] = true;
    for (ProcId p : g.out_neighbors(q)) {
      reach[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)] = true;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

struct PropertyCase {
  ProcId n;
  double density;
};

class GraphPropertySweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(GraphPropertySweep, SccMatchesMutualReachability) {
  const auto [n, density] = GetParam();
  Rng rng(mix_seed(2025, static_cast<std::uint64_t>(n) * 100 +
                             static_cast<std::uint64_t>(density * 100)));
  for (int trial = 0; trial < 15; ++trial) {
    const Digraph g = random_graph(rng, n, density);
    const auto reach = closure_oracle(g);
    const SccDecomposition scc = strongly_connected_components(g);

    for (ProcId a : g.nodes()) {
      for (ProcId b : g.nodes()) {
        const bool mutual =
            reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] &&
            reach[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)];
        const bool same_comp =
            scc.component_of[static_cast<std::size_t>(a)] ==
            scc.component_of[static_cast<std::size_t>(b)];
        EXPECT_EQ(mutual, same_comp)
            << "a=" << a << " b=" << b << " trial=" << trial;
      }
    }
  }
}

TEST_P(GraphPropertySweep, ReachabilityMatchesOracle) {
  const auto [n, density] = GetParam();
  Rng rng(mix_seed(2026, static_cast<std::uint64_t>(n) * 100 +
                             static_cast<std::uint64_t>(density * 100)));
  for (int trial = 0; trial < 15; ++trial) {
    const Digraph g = random_graph(rng, n, density);
    const auto reach = closure_oracle(g);
    for (ProcId a : g.nodes()) {
      const ProcSet fwd = reachable_from(g, a);
      const ProcSet bwd = reaching(g, a);
      for (ProcId b : g.nodes()) {
        EXPECT_EQ(fwd.contains(b),
                  reach[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(b)]);
        EXPECT_EQ(bwd.contains(b),
                  reach[static_cast<std::size_t>(b)]
                       [static_cast<std::size_t>(a)]);
      }
    }
  }
}

TEST_P(GraphPropertySweep, RootComponentsHaveNoExternalInEdges) {
  const auto [n, density] = GetParam();
  Rng rng(mix_seed(2027, static_cast<std::uint64_t>(n) * 100 +
                             static_cast<std::uint64_t>(density * 100)));
  for (int trial = 0; trial < 15; ++trial) {
    const Digraph g = random_graph(rng, n, density);
    if (g.nodes().empty()) continue;
    const std::vector<ProcSet> roots = root_components(g);
    EXPECT_GE(roots.size(), 1u);  // a DAG of SCCs always has a source
    for (const ProcSet& root : roots) {
      for (ProcId member : root) {
        // Every in-neighbor of a root member is itself in the root.
        EXPECT_TRUE(g.in_neighbors(member).is_subset_of(root))
            << "member p" << member;
      }
    }
  }
}

TEST_P(GraphPropertySweep, ShortestPathsAreConsistent) {
  const auto [n, density] = GetParam();
  Rng rng(mix_seed(2028, static_cast<std::uint64_t>(n) * 100 +
                             static_cast<std::uint64_t>(density * 100)));
  for (int trial = 0; trial < 10; ++trial) {
    const Digraph g = random_graph(rng, n, density);
    const auto reach = closure_oracle(g);
    for (ProcId a : g.nodes()) {
      for (ProcId b : g.nodes()) {
        const auto len = shortest_path_length(g, a, b);
        const auto path = shortest_path(g, a, b);
        const bool reachable =
            reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
        EXPECT_EQ(len.has_value(), reachable);
        EXPECT_EQ(!path.empty(), reachable);
        if (reachable) {
          // Path length agrees; path is a real edge walk; simple path
          // bound n-1 holds (Lemma 4's structural fact).
          EXPECT_EQ(static_cast<int>(path.size()) - 1, *len);
          EXPECT_LE(*len, static_cast<int>(g.n()) - 1);
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
          }
          EXPECT_EQ(path.front(), a);
          EXPECT_EQ(path.back(), b);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GraphPropertySweep,
    ::testing::Values(PropertyCase{4, 0.15}, PropertyCase{6, 0.3},
                      PropertyCase{8, 0.1}, PropertyCase{10, 0.5},
                      PropertyCase{13, 0.2}, PropertyCase{16, 0.05},
                      PropertyCase{16, 0.8}, PropertyCase{24, 0.15}),
    [](const ::testing::TestParamInfo<PropertyCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_d" +
             std::to_string(static_cast<int>(pinfo.param.density * 100));
    });

}  // namespace
}  // namespace sskel
