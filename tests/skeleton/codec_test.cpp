// Unit tests for the wire codec.
#include "skeleton/codec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sskel {
namespace {

TEST(VarintTest, RoundTripValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xffffffffffffffffull}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, CompactForSmallValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 5);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 200);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(CodecTest, RoundTripSmallGraph) {
  LabeledDigraph g(6, 2);
  g.set_edge(1, 2, 4);
  g.set_edge(3, 2, 7);
  g.set_edge(2, 2, 7);
  g.add_node(5);
  const std::vector<std::uint8_t> bytes = encode_graph(g);
  const LabeledDigraph back = decode_graph(bytes);
  EXPECT_EQ(back, g);
}

TEST(CodecTest, RoundTripOwnerOnlyGraph) {
  const LabeledDigraph g(4, 3);
  EXPECT_EQ(decode_graph(encode_graph(g)), g);
}

TEST(CodecTest, EncodedSizeMatchesBuffer) {
  Rng rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    const ProcId n = static_cast<ProcId>(2 + rng.next_below(30));
    LabeledDigraph g(n, 0);
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.3)) {
          g.set_edge(q, p,
                     static_cast<Round>(1 + rng.next_below(1000)));
        }
      }
    }
    EXPECT_EQ(encoded_graph_size(g),
              static_cast<std::int64_t>(encode_graph(g).size()));
  }
}

TEST(CodecTest, RoundTripRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const ProcId n = static_cast<ProcId>(1 + rng.next_below(40));
    LabeledDigraph g(n, static_cast<ProcId>(rng.next_below(
                            static_cast<std::uint64_t>(n))));
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.2)) {
          g.set_edge(q, p, static_cast<Round>(1 + rng.next_below(500)));
        }
      }
    }
    EXPECT_EQ(decode_graph(encode_graph(g)), g);
  }
}

TEST(CodecTest, SizeGrowsWithEdges) {
  LabeledDigraph sparse(16, 0);
  sparse.set_edge(1, 0, 3);
  LabeledDigraph dense(16, 0);
  for (ProcId q = 0; q < 16; ++q) {
    for (ProcId p = 0; p < 16; ++p) dense.set_edge(q, p, 9);
  }
  EXPECT_LT(encoded_graph_size(sparse), encoded_graph_size(dense));
  // Dense n-node graph: >= n^2 edges x 3 bytes minimum.
  EXPECT_GE(encoded_graph_size(dense), 16 * 16 * 3);
}

TEST(CodecDeathTest, TruncatedInputAborts) {
  LabeledDigraph g(5, 0);
  g.set_edge(1, 0, 2);
  std::vector<std::uint8_t> bytes = encode_graph(g);
  bytes.pop_back();
  EXPECT_DEATH(decode_graph(bytes), "precondition");
}

// --- hostile-input behaviour of try_decode_graph -------------------

DecodeStatus graph_status(const std::vector<std::uint8_t>& bytes) {
  DecodeResult<LabeledDigraph> r = try_decode_graph(bytes);
  return r.ok() ? DecodeStatus::kOk : r.error().status;
}

TEST(TryDecodeGraphTest, AcceptsExactlyTheCanonicalEncoding) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const ProcId n = static_cast<ProcId>(1 + rng.next_below(24));
    LabeledDigraph g(n, static_cast<ProcId>(rng.next_below(
                            static_cast<std::uint64_t>(n))));
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.25)) {
          g.set_edge(q, p, static_cast<Round>(1 + rng.next_below(300)));
        }
      }
    }
    const std::vector<std::uint8_t> bytes = encode_graph(g);
    DecodeResult<LabeledDigraph> back = try_decode_graph(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), g);
    EXPECT_EQ(encode_graph(back.value()), bytes);  // canonical
  }
}

TEST(TryDecodeGraphTest, UniverseBeyondLabeledCapRejected) {
  // The n x n label matrix makes a huge n an allocation bomb; 2^32 + 3
  // additionally used to alias n = 3 through the narrowing cast.
  for (std::uint64_t n :
       {kMaxLabeledDecodeUniverse + 1, (std::uint64_t{1} << 32) + 3}) {
    std::vector<std::uint8_t> bytes;
    put_varint(bytes, n);
    bytes.push_back(0x07);
    EXPECT_EQ(graph_status(bytes), DecodeStatus::kValueOutOfRange);
  }
}

TEST(TryDecodeGraphTest, EdgeBombRejectedBeforeDecodeLoop) {
  LabeledDigraph g(4, 0);
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, 4);
  bytes.push_back(0x0f);                       // all nodes present
  put_varint(bytes, std::uint64_t{1} << 50);   // edge count
  EXPECT_EQ(graph_status(bytes), DecodeStatus::kLimitExceeded);
}

TEST(TryDecodeGraphTest, MalformedEdgesRejected) {
  LabeledDigraph g(5, 0);
  g.add_node(1);
  g.set_edge(0, 1, 3);
  const std::vector<std::uint8_t> good = encode_graph(g);

  auto with_edge = [&](std::uint64_t q, std::uint64_t p, std::uint64_t label) {
    std::vector<std::uint8_t> bytes(good.begin(), good.begin() + 2);
    put_varint(bytes, 1);  // edge count
    put_varint(bytes, q);
    put_varint(bytes, p);
    put_varint(bytes, label);
    return bytes;
  };
  ASSERT_EQ(graph_status(with_edge(0, 1, 3)), DecodeStatus::kOk);
  // Endpoint out of the universe entirely.
  EXPECT_EQ(graph_status(with_edge(0, 9, 3)), DecodeStatus::kValueOutOfRange);
  // Endpoint in range but absent from the node bitmap — set_edge would
  // silently re-add it.
  EXPECT_EQ(graph_status(with_edge(0, 4, 3)), DecodeStatus::kInvalidEdge);
  EXPECT_EQ(graph_status(with_edge(4, 1, 3)), DecodeStatus::kInvalidEdge);
  // Label 0 means "edge absent"; negative labels don't exist.
  EXPECT_EQ(graph_status(with_edge(0, 1, 0)), DecodeStatus::kValueOutOfRange);
  EXPECT_EQ(graph_status(with_edge(0, 1, std::uint64_t{1} << 33)),
            DecodeStatus::kValueOutOfRange);
}

TEST(TryDecodeGraphTest, NonCanonicalEdgeOrderRejected) {
  LabeledDigraph g(4, 0);
  for (ProcId p = 1; p < 4; ++p) g.add_node(p);
  g.set_edge(0, 1, 2);
  g.set_edge(2, 3, 5);
  const std::vector<std::uint8_t> good = encode_graph(g);
  ASSERT_EQ(graph_status(good), DecodeStatus::kOk);

  // Header = varint n + one bitmap byte; rebuild the edge section.
  const std::vector<std::uint8_t> header(good.begin(), good.begin() + 2);

  std::vector<std::uint8_t> swapped = header;
  put_varint(swapped, 2);  // edge count
  put_varint(swapped, 2);  // (2, 3) before (0, 1)
  put_varint(swapped, 3);
  put_varint(swapped, 5);
  put_varint(swapped, 0);
  put_varint(swapped, 1);
  put_varint(swapped, 2);
  EXPECT_EQ(graph_status(swapped), DecodeStatus::kValueOutOfRange);

  std::vector<std::uint8_t> dup = header;
  put_varint(dup, 2);  // edge count
  put_varint(dup, 0);  // (0, 1) twice
  put_varint(dup, 1);
  put_varint(dup, 2);
  put_varint(dup, 0);
  put_varint(dup, 1);
  put_varint(dup, 7);
  EXPECT_EQ(graph_status(dup), DecodeStatus::kValueOutOfRange);
}

TEST(TryDecodeGraphTest, EmptyBitmapAndPaddingBitsRejected) {
  std::vector<std::uint8_t> empty;
  put_varint(empty, 5);
  empty.push_back(0x00);  // no owner node
  put_varint(empty, 0);
  EXPECT_EQ(graph_status(empty), DecodeStatus::kValueOutOfRange);

  std::vector<std::uint8_t> padded;
  put_varint(padded, 5);
  padded.push_back(0xe1);  // node 0 plus padding bits >= n
  put_varint(padded, 0);
  EXPECT_EQ(graph_status(padded), DecodeStatus::kValueOutOfRange);
}

TEST(TryDecodeGraphTest, TruncationAtEveryBoundaryIsGraceful) {
  LabeledDigraph g(11, 4);
  for (ProcId p = 0; p < 11; ++p) g.add_node(p);
  g.set_edge(4, 7, 200);   // two-byte label varint
  g.set_edge(9, 1, 3);
  const std::vector<std::uint8_t> full = encode_graph(g);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<long>(len));
    EXPECT_FALSE(try_decode_graph(cut).ok()) << "prefix " << len;
  }
}

}  // namespace
}  // namespace sskel
