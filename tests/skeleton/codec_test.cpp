// Unit tests for the wire codec.
#include "skeleton/codec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sskel {
namespace {

TEST(VarintTest, RoundTripValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xffffffffffffffffull}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, CompactForSmallValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 5);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 200);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(CodecTest, RoundTripSmallGraph) {
  LabeledDigraph g(6, 2);
  g.set_edge(1, 2, 4);
  g.set_edge(3, 2, 7);
  g.set_edge(2, 2, 7);
  g.add_node(5);
  const std::vector<std::uint8_t> bytes = encode_graph(g);
  const LabeledDigraph back = decode_graph(bytes);
  EXPECT_EQ(back, g);
}

TEST(CodecTest, RoundTripOwnerOnlyGraph) {
  const LabeledDigraph g(4, 3);
  EXPECT_EQ(decode_graph(encode_graph(g)), g);
}

TEST(CodecTest, EncodedSizeMatchesBuffer) {
  Rng rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    const ProcId n = static_cast<ProcId>(2 + rng.next_below(30));
    LabeledDigraph g(n, 0);
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.3)) {
          g.set_edge(q, p,
                     static_cast<Round>(1 + rng.next_below(1000)));
        }
      }
    }
    EXPECT_EQ(encoded_graph_size(g),
              static_cast<std::int64_t>(encode_graph(g).size()));
  }
}

TEST(CodecTest, RoundTripRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const ProcId n = static_cast<ProcId>(1 + rng.next_below(40));
    LabeledDigraph g(n, static_cast<ProcId>(rng.next_below(
                            static_cast<std::uint64_t>(n))));
    for (ProcId q = 0; q < n; ++q) {
      for (ProcId p = 0; p < n; ++p) {
        if (rng.next_bool(0.2)) {
          g.set_edge(q, p, static_cast<Round>(1 + rng.next_below(500)));
        }
      }
    }
    EXPECT_EQ(decode_graph(encode_graph(g)), g);
  }
}

TEST(CodecTest, SizeGrowsWithEdges) {
  LabeledDigraph sparse(16, 0);
  sparse.set_edge(1, 0, 3);
  LabeledDigraph dense(16, 0);
  for (ProcId q = 0; q < 16; ++q) {
    for (ProcId p = 0; p < 16; ++p) dense.set_edge(q, p, 9);
  }
  EXPECT_LT(encoded_graph_size(sparse), encoded_graph_size(dense));
  // Dense n-node graph: >= n^2 edges x 3 bytes minimum.
  EXPECT_GE(encoded_graph_size(dense), 16 * 16 * 3);
}

TEST(CodecDeathTest, TruncatedInputAborts) {
  LabeledDigraph g(5, 0);
  g.set_edge(1, 0, 2);
  std::vector<std::uint8_t> bytes = encode_graph(g);
  bytes.pop_back();
  EXPECT_DEATH(decode_graph(bytes), "precondition");
}

}  // namespace
}  // namespace sskel
