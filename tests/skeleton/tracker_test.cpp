// Unit tests for SkeletonTracker: G∩r maintenance, monotonicity,
// stabilization detection, root components.
#include "skeleton/tracker.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sskel {
namespace {

TEST(SkeletonTrackerTest, StartsComplete) {
  SkeletonTracker t(4);
  EXPECT_EQ(t.skeleton(), Digraph::complete(4));
  EXPECT_EQ(t.rounds_observed(), 0);
  EXPECT_EQ(t.last_change_round(), 0);
}

TEST(SkeletonTrackerTest, IntersectsRoundGraphs) {
  SkeletonTracker t(3);
  Digraph g1 = Digraph::complete(3);
  g1.remove_edge(0, 1);
  t.observe(1, g1);
  EXPECT_FALSE(t.skeleton().has_edge(0, 1));
  EXPECT_TRUE(t.skeleton().has_edge(1, 0));
  EXPECT_EQ(t.last_change_round(), 1);

  Digraph g2 = Digraph::complete(3);
  g2.remove_edge(1, 0);
  t.observe(2, g2);
  EXPECT_FALSE(t.skeleton().has_edge(1, 0));
  EXPECT_EQ(t.last_change_round(), 2);

  // Edge (0,1) is gone forever even though g2 contains it.
  EXPECT_FALSE(t.skeleton().has_edge(0, 1));
}

TEST(SkeletonTrackerTest, StableObservationDoesNotChange) {
  SkeletonTracker t(3);
  const Digraph g = Digraph::self_loops_only(3);
  t.observe(1, g);
  EXPECT_EQ(t.last_change_round(), 1);
  t.observe(2, g);
  t.observe(3, g);
  EXPECT_EQ(t.last_change_round(), 1);  // r_ST = 1
  EXPECT_EQ(t.rounds_observed(), 3);
}

TEST(SkeletonTrackerTest, VersionBumpsExactlyOnShrink) {
  SkeletonTracker t(4);
  EXPECT_EQ(t.version(), 0u);
  Digraph g = Digraph::complete(4);
  t.observe(1, g);
  EXPECT_EQ(t.version(), 0u);  // complete ∩ complete: nothing removed
  g.remove_edge(1, 2);
  t.observe(2, g);
  EXPECT_EQ(t.version(), 1u);
  t.observe(3, g);  // same graph again: no bump
  EXPECT_EQ(t.version(), 1u);
  g.remove_edge(3, 0);
  t.observe(4, g);
  EXPECT_EQ(t.version(), 2u);
}

TEST(SkeletonTrackerTest, StabilizedForCountsQuietRounds) {
  SkeletonTracker t(3);
  Digraph g = Digraph::complete(3);
  g.remove_edge(0, 1);
  t.observe(1, g);
  EXPECT_EQ(t.stabilized_for(), 0);
  t.observe(2, g);
  t.observe(3, g);
  EXPECT_EQ(t.stabilized_for(), 2);
  EXPECT_EQ(t.last_change_round(), 1);
  g.remove_edge(1, 2);
  t.observe(4, g);
  EXPECT_EQ(t.stabilized_for(), 0);
  EXPECT_EQ(t.last_change_round(), 4);
}

TEST(SkeletonTrackerTest, PtIsInNeighborRow) {
  SkeletonTracker t(3);
  Digraph g(3);
  g.add_self_loops();
  g.add_edge(0, 2);
  t.observe(1, g);
  EXPECT_EQ(t.pt(2), ProcSet::of(3, {0, 2}));
  EXPECT_EQ(t.pt(0), ProcSet::of(3, {0}));
}

TEST(SkeletonTrackerTest, HistoryRetainsEveryRound) {
  SkeletonTracker t(3, SkeletonTracker::History::kKeepAll);
  Digraph g1 = Digraph::complete(3);
  g1.remove_edge(0, 1);
  Digraph g2 = Digraph::complete(3);
  g2.remove_edge(2, 0);
  t.observe(1, g1);
  t.observe(2, g2);
  EXPECT_FALSE(t.skeleton_at(1).has_edge(0, 1));
  EXPECT_TRUE(t.skeleton_at(1).has_edge(2, 0));
  EXPECT_FALSE(t.skeleton_at(2).has_edge(2, 0));
  EXPECT_FALSE(t.skeleton_at(2).has_edge(0, 1));
}

TEST(SkeletonTrackerTest, MonotonicityProperty) {
  // Eq. (1): G∩r superset G∩(r+1), under arbitrary round graphs.
  Rng rng(55);
  SkeletonTracker t(6, SkeletonTracker::History::kKeepAll);
  for (Round r = 1; r <= 20; ++r) {
    Digraph g(6);
    g.add_self_loops();
    for (ProcId q = 0; q < 6; ++q) {
      for (ProcId p = 0; p < 6; ++p) {
        if (rng.next_bool(0.7)) g.add_edge(q, p);
      }
    }
    t.observe(r, g);
  }
  for (Round r = 1; r < 20; ++r) {
    EXPECT_TRUE(t.skeleton_at(r + 1).is_subgraph_of(t.skeleton_at(r)));
  }
}

TEST(SkeletonTrackerTest, FiniteStabilization) {
  // With self-loops guaranteed each round, the skeleton can shrink at
  // most n^2 - n times, so it stabilizes; last_change_round is bounded.
  Rng rng(66);
  SkeletonTracker t(5);
  for (Round r = 1; r <= 60; ++r) {
    Digraph g(5);
    g.add_self_loops();
    for (ProcId q = 0; q < 5; ++q) {
      for (ProcId p = 0; p < 5; ++p) {
        if (rng.next_bool(0.8)) g.add_edge(q, p);
      }
    }
    t.observe(r, g);
  }
  EXPECT_LE(t.last_change_round(), 60);
  // 0.8^60 per edge: every non-self edge is gone with high probability.
  EXPECT_EQ(t.skeleton(), Digraph::self_loops_only(5));
}

TEST(SkeletonTrackerTest, RootComponentsOfCurrentSkeleton) {
  SkeletonTracker t(4);
  Digraph g(4);
  g.add_self_loops();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  t.observe(1, g);
  const auto roots = t.current_root_components();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], ProcSet::of(4, {0, 1}));
}

}  // namespace
}  // namespace sskel
