// Unit tests for the LemmaMonitor itself: it must accept honest
// algorithm state and flag corrupted state.
#include "skeleton/lemmas.hpp"

#include <gtest/gtest.h>

#include "adversary/figure1.hpp"
#include "kset/runner.hpp"

namespace sskel {
namespace {

TEST(LemmaMonitorTest, CleanOnFigure1Run) {
  auto source = make_figure1_source();
  KSetRunConfig config;
  config.k = kFigure1K;
  config.attach_lemma_monitor = true;
  config.tail_rounds = 8;
  const KSetRunReport report = run_kset(*source, config);
  EXPECT_TRUE(report.all_decided);
  EXPECT_TRUE(report.lemma_violations.empty())
      << report.lemma_violations.front();
}

/// Fabricates a snapshot vector for a 2-process system where both
/// processes honestly track PT and graphs, then corrupts one field.
class MonitorFixture : public ::testing::Test {
 protected:
  static constexpr ProcId kN = 2;

  static Digraph full_graph() {
    Digraph g = Digraph::complete(kN);
    return g;
  }

  static std::vector<ProcessSnapshot> honest_round1() {
    std::vector<ProcessSnapshot> snaps(kN);
    for (ProcId p = 0; p < kN; ++p) {
      auto& s = snaps[static_cast<std::size_t>(p)];
      s.pt = ProcSet::full(kN);
      s.approx = LabeledDigraph(kN, p);
      // Line 17 of round 1: both in-edges with label 1.
      s.approx.set_edge(0, p, 1);
      s.approx.set_edge(1, p, 1);
      // The mutual edges make the approximation strongly connected,
      // matching what merge would produce after a couple of rounds;
      // for round 1 the other node's in-edges are not yet known, which
      // is also valid (Lemma 5 only binds from r >= n).
      s.estimate = 100 * p + 7;
      s.decided = false;
    }
    return snaps;
  }
};

TEST_F(MonitorFixture, AcceptsHonestRound) {
  LemmaMonitor monitor(kN);
  monitor.observe_round(1, full_graph(), honest_round1());
  EXPECT_TRUE(monitor.violations().empty())
      << monitor.violations().front();
}

TEST_F(MonitorFixture, FlagsMissingOwnerNode) {
  LemmaMonitor monitor(kN);
  auto snaps = honest_round1();
  // Corrupt: process 0's graph claims to be owned by process 1.
  snaps[0].approx = LabeledDigraph(kN, 1);
  snaps[0].approx.set_edge(1, 1, 1);
  monitor.observe_round(1, full_graph(), snaps);
  ASSERT_FALSE(monitor.violations().empty());
  EXPECT_NE(monitor.violations()[0].find("Obs.1"), std::string::npos);
}

TEST_F(MonitorFixture, FlagsStaleLabel) {
  LemmaMonitor monitor(kN);
  // Advance three honest rounds so that a label of round 1 is stale
  // (window n = 2 means labels <= r - 2 must be purged).
  monitor.observe_round(1, full_graph(), honest_round1());
  auto snaps = honest_round1();
  for (auto& s : snaps) {
    // pretend round-3 state but leave a round-1 label in place
    s.approx.set_edge(0, 0, 1);
  }
  // Fix up the self rows to round 3 to isolate the staleness check.
  for (ProcId p = 0; p < kN; ++p) {
    auto& s = snaps[static_cast<std::size_t>(p)];
    s.approx.set_edge(0, p, 3);
    s.approx.set_edge(1, p, 3);
  }
  snaps[1].approx.set_edge(0, 0, 1);  // stale: 1 <= 3 - 2
  monitor.observe_round(2, full_graph(), honest_round1());
  monitor.observe_round(3, full_graph(), snaps);
  bool found = false;
  for (const auto& v : monitor.violations()) {
    if (v.find("stale label") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(MonitorFixture, FlagsWrongPt) {
  LemmaMonitor monitor(kN);
  auto snaps = honest_round1();
  snaps[0].pt = ProcSet::singleton(kN, 0);  // lies about timeliness
  monitor.observe_round(1, full_graph(), snaps);
  bool found = false;
  for (const auto& v : monitor.violations()) {
    if (v.find("Lemma 3") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(MonitorFixture, FlagsFabricatedEdge) {
  LemmaMonitor monitor(kN);
  // Round 1: edge (1 -> 0) absent from the communication graph, yet
  // process 0 claims label-1 knowledge of it.
  Digraph g(kN);
  g.add_self_loops();
  g.add_edge(0, 1);  // only 0 -> 1

  std::vector<ProcessSnapshot> snaps(kN);
  for (ProcId p = 0; p < kN; ++p) {
    auto& s = snaps[static_cast<std::size_t>(p)];
    s.approx = LabeledDigraph(kN, p);
    s.estimate = p;
  }
  snaps[0].pt = ProcSet::singleton(kN, 0);
  snaps[0].approx.set_edge(0, 0, 1);
  snaps[0].approx.set_edge(1, 0, 1);  // fabricated: 1 not in PT(0, 1)
  snaps[1].pt = ProcSet::full(kN);
  snaps[1].approx.set_edge(0, 1, 1);
  snaps[1].approx.set_edge(1, 1, 1);
  monitor.observe_round(1, g, snaps);
  bool found = false;
  for (const auto& v : monitor.violations()) {
    if (v.find("Lemma 6") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(MonitorFixture, FlagsEstimateIncrease) {
  LemmaMonitor monitor(kN);
  auto snaps = honest_round1();
  monitor.observe_round(1, full_graph(), snaps);
  snaps[0].estimate += 50;  // estimates must be non-increasing
  // keep graphs honest for round 2
  for (ProcId p = 0; p < kN; ++p) {
    auto& s = snaps[static_cast<std::size_t>(p)];
    s.approx.set_edge(0, p, 2);
    s.approx.set_edge(1, p, 2);
  }
  monitor.observe_round(2, full_graph(), snaps);
  bool found = false;
  for (const auto& v : monitor.violations()) {
    if (v.find("Obs.2") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sskel
