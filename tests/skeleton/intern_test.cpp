// Tests for the run-wide structure intern table (DESIGN.md §10).
//
// The table is a pure cache: every analytics answer served from an
// InternedStructure must be bit-equal to a fresh computation on the
// same structure, interning must never conflate distinct structures
// (even under forced fingerprint collisions), and wiring the table
// into a full Algorithm 1 run must leave every decision, path, and
// skeleton bit-identical to the uninterned run — only the work
// counters may move.
#include "skeleton/intern.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "adversary/random_psrcs.hpp"
#include "graph/digraph.hpp"
#include "graph/labeled_digraph.hpp"
#include "graph/reach.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "kset/skeleton_kset.hpp"
#include "predicates/analysis.hpp"
#include "predicates/psrcs.hpp"
#include "rounds/graph_source.hpp"
#include "rounds/simulator.hpp"
#include "skeleton/tracker.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

Digraph random_graph(ProcId n, Rng& rng, int edge_percent) {
  Digraph g(n);
  g.add_self_loops();
  for (ProcId u = 0; u < n; ++u) {
    for (ProcId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (rng.next_below(100) < static_cast<std::uint64_t>(edge_percent)) {
        g.add_edge(u, v);
      }
    }
  }
  // Occasionally drop nodes so the node-set dimension is exercised.
  while (rng.next_below(4) == 0 && g.nodes().count() > 1) {
    g.remove_node(g.nodes().first());
  }
  return g;
}

/// Every analytics answer of `entry` re-derived from scratch on g.
void expect_entry_matches_fresh(InternedStructure& entry, const Digraph& g,
                                const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(entry.n(), g.n());
  EXPECT_EQ(entry.nodes(), g.nodes());
  EXPECT_EQ(entry.graph(), g);

  const SccDecomposition fresh = strongly_connected_components(g);
  EXPECT_EQ(entry.scc().components, fresh.components);
  EXPECT_EQ(entry.scc().component_of, fresh.component_of);
  EXPECT_EQ(entry.root_indices(), root_component_indices(g, fresh));
  EXPECT_EQ(entry.strongly_connected(), is_strongly_connected(g));

  for (ProcId owner : g.nodes()) {
    const ProcSet keep = reaching(g, owner);
    EXPECT_EQ(entry.keep_set(owner), keep) << "owner=" << owner;
    EXPECT_EQ(entry.pruned_strongly_connected(owner),
              is_strongly_connected(g.induced(keep)))
        << "owner=" << owner;
  }

  for (int k = 1; k <= 3; ++k) {
    const PsrcsCheck want = check_psrcs_exact(g, k);
    const PsrcsCheck& got = entry.psrcs_exact(k);
    EXPECT_EQ(got.holds, want.holds) << "k=" << k;
    EXPECT_EQ(got.violating_subset, want.violating_subset) << "k=" << k;
    EXPECT_EQ(got.subsets_checked, want.subsets_checked) << "k=" << k;
    EXPECT_EQ(got.certified, want.certified) << "k=" << k;
  }
}

// --- analytics consistency -------------------------------------------------

TEST(InternTableTest, RandomizedConsistencyAgainstFreshComputation) {
  // 500 random structures across sizes: the shared analytics of each
  // interned entry must be bit-equal to fresh scc/reach/psrcs runs.
  StructureInternTable table;
  Rng rng(0x1234);
  const ProcId sizes[] = {3, 6, 10, 14};
  for (int i = 0; i < 500; ++i) {
    const ProcId n = sizes[i % 4];
    const Digraph g = random_graph(
        n, rng, 10 + static_cast<int>(rng.next_below(60)));
    InternedStructure* entry = table.intern(g);
    ASSERT_NE(entry, nullptr) << "i=" << i;
    expect_entry_matches_fresh(*entry, g, "i=" + std::to_string(i));
    if (::testing::Test::HasFailure()) return;
  }
  const InternStats stats = table.stats();
  EXPECT_EQ(stats.hits + stats.misses, 500);
  EXPECT_EQ(stats.entries, static_cast<std::int64_t>(table.entry_count()));
}

TEST(InternTableTest, SameStructureResolvesToSameEntryAndComputesOnce) {
  StructureInternTable table;
  Digraph g(5);
  g.add_self_loops();
  for (ProcId p = 0; p < 5; ++p) g.add_edge(p, (p + 1) % 5);

  InternedStructure* first = table.intern(g);
  ASSERT_NE(first, nullptr);
  (void)first->scc();
  (void)first->keep_set(0);
  (void)first->psrcs_exact(1);

  const Digraph copy = g;
  InternedStructure* second = table.intern(copy);
  EXPECT_EQ(first, second);
  (void)second->scc();
  (void)second->keep_set(2);  // same component as owner 0: cached
  (void)second->psrcs_exact(1);

  EXPECT_EQ(first->scc_computes(), 1);
  EXPECT_EQ(first->keep_computes(), 1);
  EXPECT_EQ(first->psrcs_computes(), 1);
  const InternStats stats = table.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(InternTableTest, DistinctStructuresGetDistinctEntries) {
  StructureInternTable table;
  Digraph a(4);
  a.add_edge(0, 1);
  Digraph b = a;
  b.add_edge(1, 0);
  Digraph c = a;
  c.remove_node(3);
  EXPECT_NE(table.intern(a), table.intern(b));
  EXPECT_NE(table.intern(a), table.intern(c));
  EXPECT_EQ(table.entry_count(), 3u);
}

TEST(InternTableTest, LabeledAndUnlabeledStructuresShareOneEntry) {
  StructureInternTable table;
  LabeledDigraph lg(5, 1);
  lg.set_edge(1, 2, 4);
  lg.set_edge(2, 1, 9);
  Digraph g(5);
  for (ProcId p = 0; p < 5; ++p) {
    if (!lg.has_node(p)) g.remove_node(p);
  }
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  InternedStructure* from_labeled = table.intern(lg);
  ASSERT_NE(from_labeled, nullptr);
  EXPECT_EQ(from_labeled, table.intern(g));
  EXPECT_EQ(table.entry_count(), 1u);
}

// --- collision and overflow handling ---------------------------------------

TEST(InternTableTest, DegradedFingerprintForcesFullEqualityFallback) {
  // With every fingerprint forced constant, all entries chain in one
  // bucket with equal keys: only the word-level structure compare can
  // tell them apart, and every miss past the first must count at
  // least one fingerprint collision.
  InternTableOptions options;
  options.degrade_fingerprint_for_tests = true;
  StructureInternTable table(options);

  Rng rng(0xc011);
  std::vector<Digraph> graphs;
  std::vector<InternedStructure*> entries;
  for (int i = 0; i < 8; ++i) {
    Digraph g(6);
    g.add_self_loops();
    g.add_edge(0, static_cast<ProcId>(1 + i % 5));
    if (i >= 5) g.add_edge(1, static_cast<ProcId>(2 + i % 4));
    const bool fresh =
        std::find(graphs.begin(), graphs.end(), g) == graphs.end();
    InternedStructure* e = table.intern(g);
    ASSERT_NE(e, nullptr);
    if (fresh) {
      // A new structure must not alias any earlier entry.
      for (InternedStructure* prev : entries) EXPECT_NE(e, prev);
      graphs.push_back(g);
      entries.push_back(e);
    }
  }
  // Re-interning every structure finds its original entry through the
  // collision chain.
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(table.intern(graphs[i]), entries[i]) << "i=" << i;
    expect_entry_matches_fresh(*entries[i], graphs[i],
                               "degraded i=" + std::to_string(i));
  }
  const InternStats stats = table.stats();
  EXPECT_EQ(stats.entries, static_cast<std::int64_t>(graphs.size()));
  EXPECT_GT(stats.fingerprint_collisions, 0);
}

TEST(InternTableTest, OverflowReturnsNullAndKeepsExistingEntries) {
  InternTableOptions options;
  options.max_entries = 2;
  StructureInternTable table(options);

  Digraph a(4);
  a.add_edge(0, 1);
  Digraph b = a;
  b.add_edge(1, 2);
  Digraph c = a;
  c.add_edge(2, 3);

  InternedStructure* ea = table.intern(a);
  InternedStructure* eb = table.intern(b);
  ASSERT_NE(ea, nullptr);
  ASSERT_NE(eb, nullptr);
  EXPECT_EQ(table.intern(c), nullptr);  // full: caller falls back
  EXPECT_EQ(table.stats().overflow_rejects, 1);
  // Known structures still resolve.
  EXPECT_EQ(table.intern(a), ea);
  EXPECT_EQ(table.intern(b), eb);
  EXPECT_EQ(table.entry_count(), 2u);
}

// --- shared Psrcs provider -------------------------------------------------

TEST(InternProviderTest, ServesPsrcsVerdictsFromTheTable) {
  StructureInternTable table;
  SkeletonPredicateCache cache;
  cache.set_shared_provider(make_interned_psrcs_provider(table));

  Digraph g(6);
  g.add_self_loops();
  for (ProcId p = 0; p < 6; ++p) g.add_edge(p, (p + 1) % 6);

  const PsrcsCheck want = check_psrcs_exact(g, 2);
  const PsrcsCheck& got = cache.psrcs_exact(g, /*version=*/1, 2);
  EXPECT_EQ(got.holds, want.holds);
  EXPECT_EQ(got.subsets_checked, want.subsets_checked);
  (void)cache.psrcs_exact(g, 1, 2);
  EXPECT_EQ(cache.shared_hits(), 2);
  EXPECT_EQ(table.stats().psrcs_computes, 1);

  // Version bump with a changed skeleton: re-interned, still correct.
  Digraph g2 = g;
  g2.remove_edge(0, 1);
  const PsrcsCheck want2 = check_psrcs_exact(g2, 2);
  EXPECT_EQ(cache.psrcs_exact(g2, /*version=*/2, 2).holds, want2.holds);
  EXPECT_EQ(cache.shared_hits(), 3);
}

TEST(InternProviderTest, FallsBackToLocalSearchWhenTableIsFull) {
  InternTableOptions options;
  options.max_entries = 0;  // every intern overflows
  StructureInternTable table(options);
  SkeletonPredicateCache cache;
  cache.set_shared_provider(make_interned_psrcs_provider(table));

  Digraph g(5);
  g.add_self_loops();
  for (ProcId p = 0; p < 5; ++p) g.add_edge(p, (p + 1) % 5);
  const PsrcsCheck want = check_psrcs_exact(g, 1);
  EXPECT_EQ(cache.psrcs_exact(g, 1, 1).holds, want.holds);
  EXPECT_EQ(cache.shared_hits(), 0);  // provider declined; local path ran
  EXPECT_GT(cache.psrcs_recomputes(), 0);
}

// --- tracker integration ---------------------------------------------------

TEST(InternTrackerTest, TrackerAnalyticsMatchUninternedTracker) {
  // Two trackers fed the same round graphs, one resolving through an
  // intern table: identical skeletons, versions, and root components
  // at every step (intern path runs Tarjan on the canonical entry, so
  // even the component permutation matches a fresh run).
  RandomPsrcsParams params;
  params.n = 10;
  params.k = 2;
  params.root_components = 2;
  params.stabilization_round = 4;
  RandomPsrcsSource source(77, params);

  StructureInternTable table;
  SkeletonTracker interned(params.n);
  SkeletonTracker plain(params.n);
  interned.attach_intern(&table);

  for (Round r = 1; r <= 20; ++r) {
    const Digraph g = source.graph(r);
    interned.observe(r, g);
    plain.observe(r, g);
    ASSERT_EQ(interned.skeleton(), plain.skeleton()) << "r=" << r;
    ASSERT_EQ(interned.version(), plain.version()) << "r=" << r;
    const SccDecomposition fresh =
        strongly_connected_components(interned.skeleton());
    EXPECT_EQ(interned.current_scc().components, fresh.components)
        << "r=" << r;
    EXPECT_EQ(interned.current_root_indices(),
              root_component_indices(interned.skeleton(), fresh))
        << "r=" << r;
  }
  // The stabilized tracker holds an interned entry; the table saw one
  // structure per version bump at most.
  EXPECT_NE(interned.interned_current(), nullptr);
  EXPECT_GT(table.stats().hits + table.stats().misses, 0);
}

// --- full-run equivalence and sharing --------------------------------------

KSetRunReport run_with(GraphSource& source, int k, InternDomain* domain) {
  KSetRunConfig config;
  config.k = k;
  config.tail_rounds = 4;
  config.intern = domain;
  return run_kset(source, config);
}

void expect_reports_bit_equal(const KSetRunReport& a, const KSetRunReport& b,
                              const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.n, b.n);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t p = 0; p < a.outcomes.size(); ++p) {
    EXPECT_EQ(a.outcomes[p].decided, b.outcomes[p].decided) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decision, b.outcomes[p].decision) << "p=" << p;
    EXPECT_EQ(a.outcomes[p].decision_round, b.outcomes[p].decision_round)
        << "p=" << p;
  }
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.verdict.k_agreement, b.verdict.k_agreement);
  EXPECT_EQ(a.verdict.validity, b.verdict.validity);
  EXPECT_EQ(a.verdict.termination, b.verdict.termination);
  EXPECT_EQ(a.verdict.distinct_decisions, b.verdict.distinct_decisions);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.final_skeleton, b.final_skeleton);
  EXPECT_EQ(a.skeleton_last_change, b.skeleton_last_change);
  EXPECT_EQ(a.root_components_final, b.root_components_final);
}

TEST(InternRunTest, InternedRunBitEqualToPrivateRun) {
  // Decisions, paths, verdicts, and skeletons must not move when the
  // intern table is wired in — it is a cache, not a semantics change.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RandomPsrcsParams params;
    params.n = 9;
    params.k = 2;
    params.root_components = 2;
    params.stabilization_round = 3;
    RandomPsrcsSource private_source(seed, params);
    RandomPsrcsSource interned_source(seed, params);

    const KSetRunReport baseline =
        run_with(private_source, params.k, nullptr);
    InternDomain domain;
    const KSetRunReport interned =
        run_with(interned_source, params.k, &domain);
    expect_reports_bit_equal(baseline, interned,
                             "seed=" + std::to_string(seed));
    if (::testing::Test::HasFailure()) return;
    // The run actually exercised the table.
    const InternStats stats = domain.merged_stats();
    EXPECT_GT(stats.hits + stats.misses, 0) << "seed=" << seed;
  }
}

TEST(InternRunTest, AllProcessesShareOneEntryAfterStabilization) {
  // Under a convergent adversary every process's approximation settles
  // on the same structure: after the run, every process must hold the
  // *same* canonical entry, and the table must have served all but one
  // resolution per structure as hits.
  const ProcId n = 8;
  ScheduleSource source({Digraph::complete(n)});
  InternDomain domain;
  KSetRunConfig config;
  config.k = 1;
  config.tail_rounds = 2;
  config.intern = &domain;

  Simulator<SkeletonMessage> sim(source,
                                 make_kset_processes(n, config));
  const KSetRunReport report = run_kset_on_engine(sim, config);
  ASSERT_TRUE(report.all_decided);

  const InternedStructure* shared = nullptr;
  for (ProcId p = 0; p < n; ++p) {
    const auto* proc =
        dynamic_cast<const SkeletonKSetProcess*>(&sim.process(p));
    ASSERT_NE(proc, nullptr);
    ASSERT_NE(proc->intern_entry(), nullptr) << "p=" << p;
    EXPECT_GE(proc->intern_resolutions(), 1) << "p=" << p;
    if (shared == nullptr) {
      shared = proc->intern_entry();
    } else {
      EXPECT_EQ(proc->intern_entry(), shared) << "p=" << p;
    }
  }
  const InternStats stats = domain.merged_stats();
  // n processes converged on the stable structure: at least n - 1
  // lookups were hits, and the analytics behind Line 25/28 ran once
  // per structure, never once per process.
  EXPECT_GE(stats.hits, static_cast<std::int64_t>(n) - 1);
  EXPECT_LE(stats.scc_computes, stats.entries);
  EXPECT_EQ(stats.overflow_rejects, 0);
}

TEST(InternDomainTest, ShardsArePerThreadAndStatsMerge) {
  InternDomain domain;
  StructureInternTable& mine = domain.local();
  EXPECT_EQ(&mine, &domain.local());  // stable per thread
  Digraph g(4);
  g.add_edge(0, 1);
  ASSERT_NE(mine.intern(g), nullptr);
  EXPECT_EQ(domain.shard_count(), 1u);

  std::thread other([&domain, &g] {
    StructureInternTable& theirs = domain.local();
    (void)theirs.intern(g);
    (void)theirs.intern(g);
  });
  other.join();
  EXPECT_EQ(domain.shard_count(), 2u);
  const InternStats merged = domain.merged_stats();
  EXPECT_EQ(merged.misses, 2);  // one per shard: shards do not share
  EXPECT_EQ(merged.hits, 1);
  EXPECT_EQ(merged.entries, 2);
}

TEST(InternTierTest, PromotionSharesAnalyticsAcrossShards) {
  // Cross-shard promotion (DESIGN.md §12): a shard that materialized
  // expensive analytics offers a snapshot on its next hit; another
  // shard's first miss adopts the snapshot instead of recomputing.
  InternGlobalTier tier;
  StructureInternTable a;
  StructureInternTable b;
  a.set_global_tier(&tier);
  b.set_global_tier(&tier);

  Rng rng(0x9201107);
  const Digraph g = random_graph(8, rng, 35);

  InternedStructure* ea = a.intern(g);
  ASSERT_NE(ea, nullptr);
  // No analytics yet: the hit path must not promote a bare structure.
  ASSERT_EQ(a.intern(g), ea);
  EXPECT_EQ(tier.entry_count(), 0u);
  EXPECT_EQ(a.stats().promotions, 0);

  (void)ea->scc();  // materialize the shareable analytics
  EXPECT_EQ(ea->scc_computes(), 1);
  ASSERT_EQ(a.intern(g), ea);  // hit-path offer fires now
  EXPECT_EQ(tier.entry_count(), 1u);
  EXPECT_EQ(a.stats().promotions, 1);
  // At most one offer per entry.
  ASSERT_EQ(a.intern(g), ea);
  EXPECT_EQ(a.stats().promotions, 1);

  // Shard b misses, adopts the snapshot, and keeps its own entry.
  InternedStructure* eb = b.intern(g);
  ASSERT_NE(eb, nullptr);
  EXPECT_NE(eb, ea);
  const InternStats bs = b.stats();
  EXPECT_EQ(bs.misses, 1);
  EXPECT_EQ(bs.promotion_hits, 1);
  // The adopted analytics arrive precomputed and uncounted: querying
  // them must not re-run Tarjan (and must not double-report the
  // originating shard's work).
  EXPECT_EQ(eb->root_components(), ea->root_components());
  EXPECT_EQ(eb->scc_computes(), 0);

  // An adopted entry is never re-offered (first writer wins).
  ASSERT_EQ(b.intern(g), eb);
  EXPECT_EQ(b.stats().promotions, 0);
  EXPECT_EQ(tier.entry_count(), 1u);
}

TEST(InternTierTest, CollidingFingerprintNeverAdoptsWrongAnalytics) {
  // Degraded fingerprints make every structure collide in the tier;
  // the same-structure compare must reject the snapshot and fall back
  // to a fresh private computation.
  InternTableOptions options;
  options.degrade_fingerprint_for_tests = true;
  InternGlobalTier tier;
  StructureInternTable a(options);
  StructureInternTable b(options);
  a.set_global_tier(&tier);
  b.set_global_tier(&tier);

  Digraph g1(4);
  g1.add_self_loops();
  g1.add_edge(0, 1);
  Digraph g2(4);
  g2.add_self_loops();
  g2.add_edge(1, 0);

  InternedStructure* e1 = a.intern(g1);
  ASSERT_NE(e1, nullptr);
  (void)e1->scc();
  ASSERT_EQ(a.intern(g1), e1);  // promote g1's snapshot
  ASSERT_EQ(tier.entry_count(), 1u);

  // b interns the *different* structure behind the same fingerprint.
  InternedStructure* e2 = b.intern(g2);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(b.stats().promotion_hits, 0);
  EXPECT_EQ(e2->nodes(), g2.nodes());
  EXPECT_EQ(e2->graph(), g2);
}

}  // namespace
}  // namespace sskel
