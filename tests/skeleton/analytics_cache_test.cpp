// Cache-invalidation property tests for the change-driven analytics
// (DESIGN.md §8-9): across randomized interleavings of shrinking and
// no-op rounds, every version-cached result stays *equivalent* to a
// fresh recomputation, and the number of recomputations equals the
// number of version bumps (+1 for the initial fill) — never once per
// round.
//
// "Equivalent", not "bit-identical": the tracker's SCC analytics are
// maintained incrementally (graph/inc_scc.hpp), and the incremental
// maintainer guarantees the same partition, the same root sets, and a
// valid reverse-topological component order — but not Tarjan's exact
// emission permutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/scc.hpp"
#include "predicates/analysis.hpp"
#include "predicates/psrcs.hpp"
#include "skeleton/tracker.hpp"
#include "util/rng.hpp"
#include "util/versioned_cache.hpp"

namespace sskel {
namespace {

struct Edge {
  ProcId from;
  ProcId to;
};

/// Non-self-loop edges present in g.
std::vector<Edge> removable_edges(const Digraph& g) {
  std::vector<Edge> edges;
  for (ProcId q : g.nodes()) {
    for (ProcId p : g.out_neighbors(q)) {
      if (q != p) edges.push_back({q, p});
    }
  }
  return edges;
}

std::vector<ProcSet> sorted_sets(std::vector<ProcSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const ProcSet& a, const ProcSet& b) {
              return a.first() < b.first();
            });
  return sets;
}

/// Tracker analytics vs a fresh Tarjan run: same partition, same root
/// sets, consistent component_of, valid reverse-topological order.
void expect_scc_equivalent(const SkeletonTracker& tracker) {
  const Digraph& skel = tracker.skeleton();
  const SccDecomposition& got = tracker.current_scc();
  const SccDecomposition fresh = strongly_connected_components(skel);
  ASSERT_EQ(got.count(), fresh.count());
  ASSERT_EQ(sorted_sets(got.components), sorted_sets(fresh.components));
  for (ProcId p : skel.nodes()) {
    const int c = got.component_of[static_cast<std::size_t>(p)];
    ASSERT_GE(c, 0);
    ASSERT_TRUE(got.components[static_cast<std::size_t>(c)].contains(p));
  }
  for (ProcId u : skel.nodes()) {
    for (ProcId v : skel.out_neighbors(u)) {
      const int cu = got.component_of[static_cast<std::size_t>(u)];
      const int cv = got.component_of[static_cast<std::size_t>(v)];
      if (cu != cv) {
        ASSERT_LT(cv, cu);
      }
    }
  }
  ASSERT_EQ(sorted_sets(tracker.current_root_components()),
            sorted_sets(root_components(skel)));
}

TEST(AnalyticsCacheProperty, CachedEqualsFreshAcrossRandomRuns) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(mix_seed(0xCAC4E, seed));
    const ProcId n = static_cast<ProcId>(6 + rng.next_below(10));  // 6..15
    SkeletonTracker tracker(n);
    SkeletonPredicateCache predicates;
    const int k = 2;

    std::uint64_t bumps = 0;
    std::int64_t psrcs_queries = 0;
    // Prime both caches at version 0 so "recomputes == bumps + 1"
    // holds even when the very first round already shrinks.
    (void)tracker.current_root_components();
    (void)predicates.psrcs_exact(tracker.skeleton(), tracker.version(), k);
    const Round rounds = 40;
    for (Round r = 1; r <= rounds; ++r) {
      // Shrinking round with probability ~1/3 (while edges remain),
      // no-op round otherwise. A no-op observes the complete graph, a
      // shrinking round removes exactly one surviving non-loop edge.
      Digraph g = Digraph::complete(n);
      const std::vector<Edge> candidates = removable_edges(tracker.skeleton());
      const bool shrink = !candidates.empty() && rng.next_below(3) == 0;
      if (shrink) {
        const Edge e = candidates[static_cast<std::size_t>(
            rng.next_below(candidates.size()))];
        g.remove_edge(e.from, e.to);
      }

      const std::uint64_t version_before = tracker.version();
      tracker.observe(r, g);
      if (shrink) {
        ASSERT_EQ(tracker.version(), version_before + 1);
        bumps += 1;
      } else {
        ASSERT_EQ(tracker.version(), version_before);
      }

      // Equivalent to fresh recomputation, every round.
      expect_scc_equivalent(tracker);

      const PsrcsCheck& cached =
          predicates.psrcs_exact(tracker.skeleton(), tracker.version(), k);
      const PsrcsCheck fresh_psrcs = check_psrcs_exact(tracker.skeleton(), k);
      ++psrcs_queries;
      ASSERT_EQ(cached.holds, fresh_psrcs.holds);
      ASSERT_EQ(cached.violating_subset, fresh_psrcs.violating_subset);
      ASSERT_EQ(cached.subsets_checked, fresh_psrcs.subsets_checked);
      // Exact verdicts are always certified at full confidence.
      ASSERT_TRUE(cached.certified);
      ASSERT_EQ(cached.confidence, 1.0);

      ASSERT_EQ(tracker.stabilized_for(),
                tracker.rounds_observed() - tracker.last_change_round());
    }

    // The recompute counters are the heart of the property: work
    // happened exactly once per version (plus the initial fill), not
    // once per round.
    ASSERT_GT(psrcs_queries, static_cast<std::int64_t>(bumps) + 1);
    EXPECT_EQ(tracker.analytics_recomputes(),
              static_cast<std::int64_t>(bumps) + 1);
    EXPECT_EQ(predicates.psrcs_recomputes(),
              static_cast<std::int64_t>(bumps) + 1);
    EXPECT_EQ(tracker.version(), bumps);
  }
}

TEST(AnalyticsCacheProperty, NoOpTailDoesNotRecompute) {
  const ProcId n = 8;
  SkeletonTracker tracker(n);
  Digraph g = Digraph::complete(n);
  g.remove_edge(0, 3);
  tracker.observe(1, g);
  (void)tracker.current_root_components();
  const std::int64_t after_first = tracker.analytics_recomputes();

  // A long post-stabilization tail: same graph every round.
  for (Round r = 2; r <= 100; ++r) {
    tracker.observe(r, g);
    (void)tracker.current_scc();
    (void)tracker.current_root_components();
  }
  EXPECT_EQ(tracker.analytics_recomputes(), after_first);
  EXPECT_EQ(tracker.stabilized_for(), 99);
}

TEST(AnalyticsCacheProperty, SparseQueriesBatchDeltasCorrectly) {
  // Analytics queried only every few version bumps: the tracker must
  // batch the intervening deltas into one incremental apply and still
  // agree with a fresh Tarjan run.
  Rng rng(0xBA7C4);
  const ProcId n = 12;
  SkeletonTracker tracker(n);
  (void)tracker.current_scc();  // seed the maintainer
  Round r = 0;
  while (true) {
    const std::vector<Edge> candidates = removable_edges(tracker.skeleton());
    if (candidates.empty()) break;
    // 1-4 shrinking rounds without any analytics query in between.
    const auto burst = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const std::vector<Edge> now = removable_edges(tracker.skeleton());
      if (now.empty()) break;
      const Edge e =
          now[static_cast<std::size_t>(rng.next_below(now.size()))];
      Digraph g = Digraph::complete(n);
      g.remove_edge(e.from, e.to);
      tracker.observe(++r, g);
    }
    expect_scc_equivalent(tracker);
  }
}

// --- VersionedCache unit tests --------------------------------------------

TEST(VersionedCacheTest, InvalidateResetsStampAndCounts) {
  VersionedCache<int> cache;
  int fills = 0;
  const auto fill = [&] { return ++fills; };
  EXPECT_EQ(cache.get(7, fill), 1);
  EXPECT_EQ(cache.get(7, fill), 1);  // hit
  EXPECT_TRUE(cache.fresh(7));
  EXPECT_EQ(cache.invalidations(), 0);

  cache.invalidate();
  EXPECT_FALSE(cache.fresh(7));
  EXPECT_FALSE(cache.fresh(0));  // the stamp is gone, not reset-to-valid
  EXPECT_EQ(cache.invalidations(), 1);
  // Re-querying the *same* version recomputes: the stale stamp no
  // longer shadows the invalidation (the old bug kept version_ == 7
  // around, so accounting drifted once callers re-validated).
  EXPECT_EQ(cache.get(7, fill), 2);
  EXPECT_EQ(cache.recomputes(), 2);
  EXPECT_EQ(cache.invalidations(), 1);
}

TEST(VersionedCacheTest, RefreshUpdatesInPlace) {
  VersionedCache<std::vector<int>> cache;
  const auto append = [](std::vector<int>& v) { v.push_back(1); };
  EXPECT_EQ(cache.refresh(1, append).size(), 1u);  // first fill
  EXPECT_EQ(cache.refresh(1, append).size(), 1u);  // hit: no update
  EXPECT_EQ(cache.refresh(2, append).size(), 2u);  // stale: in-place
  EXPECT_EQ(cache.recomputes(), 2);
  cache.invalidate();
  EXPECT_EQ(cache.refresh(2, append).size(), 3u);  // forced
  EXPECT_EQ(cache.recomputes(), 3);
}

}  // namespace
}  // namespace sskel
