// Cache-invalidation property tests for the change-driven analytics
// (DESIGN.md §8): across randomized interleavings of shrinking and
// no-op rounds, every version-cached result stays bit-identical to a
// fresh recomputation, and the number of recomputations equals the
// number of version bumps (+1 for the initial fill) — never once per
// round.
#include <gtest/gtest.h>

#include <vector>

#include "graph/scc.hpp"
#include "predicates/analysis.hpp"
#include "predicates/psrcs.hpp"
#include "skeleton/tracker.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

struct Edge {
  ProcId from;
  ProcId to;
};

/// Non-self-loop edges present in g.
std::vector<Edge> removable_edges(const Digraph& g) {
  std::vector<Edge> edges;
  for (ProcId q : g.nodes()) {
    for (ProcId p : g.out_neighbors(q)) {
      if (q != p) edges.push_back({q, p});
    }
  }
  return edges;
}

TEST(AnalyticsCacheProperty, CachedEqualsFreshAcrossRandomRuns) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(mix_seed(0xCAC4E, seed));
    const ProcId n = static_cast<ProcId>(6 + rng.next_below(10));  // 6..15
    SkeletonTracker tracker(n);
    SkeletonPredicateCache predicates;
    const int k = 2;

    std::uint64_t bumps = 0;
    std::int64_t psrcs_queries = 0;
    // Prime both caches at version 0 so "recomputes == bumps + 1"
    // holds even when the very first round already shrinks.
    (void)tracker.current_root_components();
    (void)predicates.psrcs_exact(tracker.skeleton(), tracker.version(), k);
    const Round rounds = 40;
    for (Round r = 1; r <= rounds; ++r) {
      // Shrinking round with probability ~1/3 (while edges remain),
      // no-op round otherwise. A no-op observes the complete graph, a
      // shrinking round removes exactly one surviving non-loop edge.
      Digraph g = Digraph::complete(n);
      const std::vector<Edge> candidates = removable_edges(tracker.skeleton());
      const bool shrink = !candidates.empty() && rng.next_below(3) == 0;
      if (shrink) {
        const Edge e = candidates[static_cast<std::size_t>(
            rng.next_below(candidates.size()))];
        g.remove_edge(e.from, e.to);
      }

      const std::uint64_t version_before = tracker.version();
      tracker.observe(r, g);
      if (shrink) {
        ASSERT_EQ(tracker.version(), version_before + 1);
        bumps += 1;
      } else {
        ASSERT_EQ(tracker.version(), version_before);
      }

      // Bit-identical to fresh recomputation, every round.
      const SccDecomposition fresh = strongly_connected_components(
          tracker.skeleton());
      ASSERT_EQ(tracker.current_scc().component_of, fresh.component_of);
      ASSERT_EQ(tracker.current_scc().components, fresh.components);
      ASSERT_EQ(tracker.current_root_components(),
                root_components(tracker.skeleton()));

      const PsrcsCheck& cached =
          predicates.psrcs_exact(tracker.skeleton(), tracker.version(), k);
      const PsrcsCheck fresh_psrcs = check_psrcs_exact(tracker.skeleton(), k);
      ++psrcs_queries;
      ASSERT_EQ(cached.holds, fresh_psrcs.holds);
      ASSERT_EQ(cached.violating_subset, fresh_psrcs.violating_subset);
      ASSERT_EQ(cached.subsets_checked, fresh_psrcs.subsets_checked);

      ASSERT_EQ(tracker.stabilized_for(),
                tracker.rounds_observed() - tracker.last_change_round());
    }

    // The recompute counters are the heart of the property: work
    // happened exactly once per version (plus the initial fill), not
    // once per round.
    ASSERT_GT(psrcs_queries, static_cast<std::int64_t>(bumps) + 1);
    EXPECT_EQ(tracker.analytics_recomputes(),
              static_cast<std::int64_t>(bumps) + 1);
    EXPECT_EQ(predicates.psrcs_recomputes(),
              static_cast<std::int64_t>(bumps) + 1);
    EXPECT_EQ(tracker.version(), bumps);
  }
}

TEST(AnalyticsCacheProperty, NoOpTailDoesNotRecompute) {
  const ProcId n = 8;
  SkeletonTracker tracker(n);
  Digraph g = Digraph::complete(n);
  g.remove_edge(0, 3);
  tracker.observe(1, g);
  (void)tracker.current_root_components();
  const std::int64_t after_first = tracker.analytics_recomputes();

  // A long post-stabilization tail: same graph every round.
  for (Round r = 2; r <= 100; ++r) {
    tracker.observe(r, g);
    (void)tracker.current_scc();
    (void)tracker.current_root_components();
  }
  EXPECT_EQ(tracker.analytics_recomputes(), after_first);
  EXPECT_EQ(tracker.stabilized_for(), 99);
}

}  // namespace
}  // namespace sskel
