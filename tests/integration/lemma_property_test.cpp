// The approximation lemmas (Obs. 1, Lemmas 3-7, Theorem 8) hold "atop
// of any communication predicate" — the monitor must stay clean even
// on arbitrary random graph sequences that satisfy no predicate at
// all, as long as the source eventually stabilizes (which the
// Theorem 8 finalize pass needs to know G∩∞).
#include <gtest/gtest.h>

#include <memory>

#include "adversary/eventual.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "rounds/graph_source.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

/// Random graphs for a prefix, then one fixed random graph forever.
class StabilizingRandomSource final : public GraphSource {
 public:
  StabilizingRandomSource(std::uint64_t seed, ProcId n, Round stabilize_at,
                          double density)
      : seed_(seed), n_(n), stabilize_at_(stabilize_at), density_(density) {}

  ProcId n() const override { return n_; }

  Digraph graph(Round r) override {
    const Round effective = std::min(r, stabilize_at_);
    Rng rng(mix_seed(seed_, static_cast<std::uint64_t>(effective)));
    Digraph g(n_);
    g.add_self_loops();
    for (ProcId q = 0; q < n_; ++q) {
      for (ProcId p = 0; p < n_; ++p) {
        if (q != p && rng.next_bool(density_)) g.add_edge(q, p);
      }
    }
    return g;
  }

 private:
  std::uint64_t seed_;
  ProcId n_;
  Round stabilize_at_;
  double density_;
};

struct LemmaCase {
  ProcId n;
  Round stabilize_at;
  double density;
};

class LemmaSweep : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(LemmaSweep, MonitorCleanOnArbitraryStabilizingRuns) {
  const LemmaCase c = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    StabilizingRandomSource source(mix_seed(1001, seed), c.n,
                                   c.stabilize_at, c.density);
    KSetRunConfig config;
    config.k = c.n;  // any decision count is fine; lemmas are the test
    config.attach_lemma_monitor = true;
    config.tail_rounds = 2 * c.n;
    config.max_rounds = 12 * c.n + 40;
    const KSetRunReport report = run_kset(source, config);
    EXPECT_TRUE(report.lemma_violations.empty())
        << "n=" << c.n << " seed=" << seed << ": "
        << report.lemma_violations.front();
    // Validity is also predicate-free.
    EXPECT_TRUE(report.verdict.validity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LemmaSweep,
    ::testing::Values(LemmaCase{3, 2, 0.5}, LemmaCase{4, 5, 0.3},
                      LemmaCase{5, 4, 0.7}, LemmaCase{6, 8, 0.4},
                      LemmaCase{8, 6, 0.25}, LemmaCase{10, 10, 0.5}),
    [](const ::testing::TestParamInfo<LemmaCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_st" +
             std::to_string(pinfo.param.stabilize_at) + "_d" +
             std::to_string(static_cast<int>(pinfo.param.density * 100));
    });

TEST(LemmaOnEventualRunTest, MonitorCleanDespitePredicateFailure) {
  // The ♦Psrcs counterexample run: agreement collapses to n values,
  // but the approximation lemmas still hold.
  auto source = make_eventual_source(6, 10);
  KSetRunConfig config;
  config.k = 6;
  config.attach_lemma_monitor = true;
  config.tail_rounds = 8;
  const KSetRunReport report = run_kset(*source, config);
  EXPECT_TRUE(report.all_decided);
  EXPECT_TRUE(report.lemma_violations.empty())
      << report.lemma_violations.front();
}

TEST(LemmaOnPsrcsRunsTest, MonitorCleanAcrossGuards) {
  for (DecisionGuard guard :
       {DecisionGuard::kAfterRoundN, DecisionGuard::kAtRoundN}) {
    RandomPsrcsParams params;
    params.n = 7;
    params.k = 2;
    params.root_components = 2;
    params.stabilization_round = 3;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      RandomPsrcsSource source(seed, params);
      KSetRunConfig config;
      config.k = 2;
      config.guard = guard;
      config.attach_lemma_monitor = true;
      config.tail_rounds = 10;
      const KSetRunReport report = run_kset(source, config);
      EXPECT_TRUE(report.lemma_violations.empty())
          << report.lemma_violations.front();
    }
  }
}

}  // namespace
}  // namespace sskel
