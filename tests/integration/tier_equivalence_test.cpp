// End-to-end tier-equivalence tripwires: a full Algorithm 1 run must
// be bit-identical whether ProcSet uses the seed's flat dense
// representation or the tiered auto policy (summary words + sparse
// adoption, forced on via a 1-word tier threshold). The representation
// is a performance layer; any divergence in decisions, rounds,
// skeletons, or lemma verdicts is a correctness bug, not noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/partition.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "util/proc_set.hpp"

namespace sskel {
namespace {

class ScopedTierThreshold {
 public:
  explicit ScopedTierThreshold(std::size_t words)
      : previous_(ProcSet::tier_threshold_words()) {
    ProcSet::set_tier_threshold_words(words);
  }
  ScopedTierThreshold(const ScopedTierThreshold&) = delete;
  ScopedTierThreshold& operator=(const ScopedTierThreshold&) = delete;
  ~ScopedTierThreshold() { ProcSet::set_tier_threshold_words(previous_); }

 private:
  std::size_t previous_;
};

std::vector<ProcSet> sorted_sets(std::vector<ProcSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const ProcSet& a, const ProcSet& b) {
              return a.first() < b.first();
            });
  return sets;
}

void expect_reports_equal(const KSetRunReport& dense,
                          const KSetRunReport& tiered) {
  EXPECT_EQ(dense.all_decided, tiered.all_decided);
  EXPECT_EQ(dense.rounds_executed, tiered.rounds_executed);
  EXPECT_EQ(dense.last_decision_round, tiered.last_decision_round);
  EXPECT_EQ(dense.distinct_values, tiered.distinct_values);
  EXPECT_EQ(dense.verdict.k_agreement, tiered.verdict.k_agreement);
  EXPECT_EQ(dense.verdict.validity, tiered.verdict.validity);
  EXPECT_EQ(dense.skeleton_last_change, tiered.skeleton_last_change);
  EXPECT_TRUE(dense.final_skeleton == tiered.final_skeleton);
  EXPECT_EQ(dense.total_messages, tiered.total_messages);
  EXPECT_EQ(dense.paths, tiered.paths);
  EXPECT_EQ(dense.lemma_violations, tiered.lemma_violations);
  ASSERT_EQ(dense.outcomes.size(), tiered.outcomes.size());
  for (std::size_t p = 0; p < dense.outcomes.size(); ++p) {
    EXPECT_EQ(dense.outcomes[p].proposal, tiered.outcomes[p].proposal);
    EXPECT_EQ(dense.outcomes[p].decided, tiered.outcomes[p].decided);
    EXPECT_EQ(dense.outcomes[p].decision, tiered.outcomes[p].decision);
    EXPECT_EQ(dense.outcomes[p].decision_round,
              tiered.outcomes[p].decision_round) << "p" << p;
  }
  const std::vector<ProcSet> droots = sorted_sets(dense.root_components_final);
  const std::vector<ProcSet> troots =
      sorted_sets(tiered.root_components_final);
  ASSERT_EQ(droots.size(), troots.size());
  for (std::size_t i = 0; i < droots.size(); ++i) {
    EXPECT_TRUE(droots[i] == troots[i]) << "root " << i;
  }
}

/// Runs the same (seeded) scenario twice — once pinned dense, once
/// under the tiered auto policy — and demands equal reports. The
/// source is rebuilt per arm so both runs see identical graphs.
template <typename MakeSource>
void run_both_policies(const MakeSource& make_source,
                       const KSetRunConfig& config) {
  ScopedTierThreshold threshold(1);  // every universe >= 64 is tiered
  KSetRunReport dense;
  {
    ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
    auto source = make_source();
    dense = run_kset(*source, config);
  }
  auto source = make_source();
  const KSetRunReport tiered = run_kset(*source, config);
  expect_reports_equal(dense, tiered);
}

TEST(TierEquivalenceTest, RandomPsrcsRunsBitEqual) {
  for (const std::uint64_t seed : {0x7E51ull, 0x7E52ull, 0x7E53ull}) {
    RandomPsrcsParams params;
    params.n = 64;
    params.k = 3;
    params.root_components = 3;
    params.stabilization_round = 4;
    params.noise_probability = 0.35;
    KSetRunConfig config;
    config.k = 3;
    config.tail_rounds = 3;
    run_both_policies(
        [&] { return std::make_unique<RandomPsrcsSource>(seed, params); },
        config);
  }
}

TEST(TierEquivalenceTest, LemmaMonitoredRunBitEqual) {
  // The monitor exercises the whole analytics stack (tracker, history,
  // induced components, Lemma 7 bases) on top of the algorithm; its
  // verdict list must be identical too. Small n keeps the O(n^3)
  // monitor affordable.
  RandomPsrcsParams params;
  params.n = 48;
  params.k = 2;
  params.root_components = 2;
  params.stabilization_round = 3;
  params.noise_probability = 0.3;
  KSetRunConfig config;
  config.k = 2;
  config.attach_lemma_monitor = true;
  config.tail_rounds = 4;
  run_both_policies(
      [&] { return std::make_unique<RandomPsrcsSource>(0x7E60, params); },
      config);
}

TEST(TierEquivalenceTest, PartitionDecayRunBitEqual) {
  // Partitioned system with heavy transient cross-noise: the skeleton
  // decays over many rounds, crossing the tiered sets' density
  // transition mid-run — the exact path the sparse adoption must not
  // perturb.
  for (const std::uint64_t seed : {0xDECA1ull, 0xDECA2ull}) {
    PartitionParams params;
    params.blocks = even_blocks(96, 3);
    params.cross_noise_probability = 0.6;
    params.stabilization_round = 12;
    KSetRunConfig config;
    config.k = 3;
    config.tail_rounds = 3;
    run_both_policies(
        [&] { return std::make_unique<PartitionSource>(seed, params); },
        config);
  }
}

}  // namespace
}  // namespace sskel
