// Lemma 11 quantitatively: every process decides by r_ST + 2n - 1
// (+1 for the strict Line-28 guard), across stabilization delays and
// system sizes. Also checks the eventual-predicate counterexample E6.
#include <gtest/gtest.h>

#include "adversary/eventual.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

struct BoundCase {
  ProcId n;
  Round stabilization;
};

class TerminationSweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(TerminationSweep, DecisionsWithinLemma11Bound) {
  const BoundCase c = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomPsrcsParams params;
    params.n = c.n;
    params.k = 2;
    params.root_components = 2;
    params.stabilization_round = c.stabilization;
    params.noise_probability = 0.4;
    RandomPsrcsSource source(mix_seed(777, seed), params);

    for (DecisionGuard guard :
         {DecisionGuard::kAfterRoundN, DecisionGuard::kAtRoundN}) {
      RandomPsrcsSource fresh(mix_seed(777, seed), params);
      KSetRunConfig config;
      config.k = 2;
      config.guard = guard;
      config.max_rounds = 4 * c.n + 4 * c.stabilization + 40;
      const KSetRunReport report = run_kset(fresh, config);
      ASSERT_TRUE(report.all_decided)
          << "n=" << c.n << " st=" << c.stabilization << " seed=" << seed;
      EXPECT_LE(report.last_decision_round, report.termination_bound(guard))
          << "n=" << c.n << " st=" << c.stabilization << " seed=" << seed;
      // The observed r_ST can never exceed the engineered round.
      EXPECT_LE(report.skeleton_last_change, c.stabilization);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TerminationSweep,
    ::testing::Values(BoundCase{4, 1}, BoundCase{4, 6}, BoundCase{6, 3},
                      BoundCase{8, 1}, BoundCase{8, 10}, BoundCase{12, 5},
                      BoundCase{16, 2}),
    [](const ::testing::TestParamInfo<BoundCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_st" +
             std::to_string(pinfo.param.stabilization);
    });

TEST(EventualCounterexampleTest, IsolationForcesNDistinctValues) {
  // E6: under ♦Psrcs, a long enough all-alone prefix makes every
  // process decide its own value — n distinct decisions, matching the
  // paper's indistinguishability argument for why perpetual synchrony
  // is needed.
  const ProcId n = 6;
  auto source = make_eventual_source(n, 2 * n);
  KSetRunConfig config;
  config.k = 1;
  const KSetRunReport report = run_kset(*source, config);
  ASSERT_TRUE(report.all_decided);
  EXPECT_EQ(report.distinct_values, n);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(report.outcomes[static_cast<std::size_t>(p)].decision,
              report.outcomes[static_cast<std::size_t>(p)].proposal);
  }
  // The decisions land exactly at the guard boundary n+1, well before
  // the good suffix starts.
  EXPECT_EQ(report.last_decision_round, n + 1);
}

TEST(EventualCounterexampleTest, EvenOneIsolatedRoundBreaksAgreement) {
  // Because PT is a *perpetual* intersection, a single all-alone round
  // removes every cross edge from every PT set for good: Algorithm 1
  // then behaves exactly as in the long-isolation run and decides n
  // distinct values. This is the algorithmic face of the paper's
  // remark that eventual-only guarantees are useless here.
  const ProcId n = 5;
  auto source = make_eventual_source(n, 1);
  KSetRunConfig config;
  config.k = 1;
  const KSetRunReport report = run_kset(*source, config);
  ASSERT_TRUE(report.all_decided);
  EXPECT_EQ(report.distinct_values, n);
}

TEST(EventualCounterexampleTest, NoIsolationGivesConsensus) {
  // Baseline sanity: with the star present from round 1, Psrcs(1)
  // holds perpetually and the run reaches consensus on the hub's
  // minimum view.
  const ProcId n = 6;
  auto source = make_eventual_source(n, 0);
  KSetRunConfig config;
  config.k = 1;
  const KSetRunReport report = run_kset(*source, config);
  ASSERT_TRUE(report.all_decided);
  EXPECT_EQ(report.distinct_values, 1);
  EXPECT_EQ(report.outcomes[0].decision, 7);  // p0's own proposal
  EXPECT_TRUE(report.verdict.all_hold());
}

}  // namespace
}  // namespace sskel
