// Focused tests for the propagation lemmas not directly covered by the
// LemmaMonitor:
//
//   Lemma 4:  knowledge travels along skeleton paths — if a path
//             p1 -> ... -> p_{l+1} of length l exists in G∩r, then
//             p_{l+1}'s graph holds each q in PT(p1, r-l) as an edge
//             (q -> p1) labeled within [r-l, r].
//   Lemma 13: a Line-12 (forwarded) decision traces back to an earlier
//             Line-29 (connectivity) decision with the same value.
//   Lemma 14: all members of a round-n strongly connected component
//             share one estimate at round n.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "adversary/random_psrcs.hpp"
#include "graph/reach.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "kset/skeleton_kset.hpp"
#include "rounds/simulator.hpp"
#include "skeleton/tracker.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

struct LiveRun {
  explicit LiveRun(GraphSource& source)
      : tracker(source.n(), SkeletonTracker::History::kKeepAll) {
    const ProcId n = source.n();
    std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
    for (ProcId p = 0; p < n; ++p) {
      auto proc = std::make_unique<SkeletonKSetProcess>(n, p, 100 * p + 7);
      views.push_back(proc.get());
      procs.push_back(std::move(proc));
    }
    sim = std::make_unique<Simulator<SkeletonMessage>>(source,
                                                       std::move(procs));
    sim->add_observer(tracker.observer());
  }

  std::vector<SkeletonKSetProcess*> views;
  std::unique_ptr<Simulator<SkeletonMessage>> sim;
  SkeletonTracker tracker;
};

TEST(Lemma4Test, KnowledgeTravelsAlongSkeletonPaths) {
  // Random Psrcs runs; at a round r >= n, for every pair (a, b) with a
  // shortest skeleton path of length l <= n-1 from a to b, b's graph
  // must contain every (q -> a) edge with q in PT(a, r-l), labeled in
  // [r-l, r].
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomPsrcsParams params;
    params.n = 7;
    params.k = 2;
    params.root_components = 2;
    params.stabilization_round = 2;
    RandomPsrcsSource source(seed, params);
    LiveRun run(source);

    const Round r = 2 * 7;  // comfortably past n, still pre-decide tail
    run.sim->run(r);

    const Digraph& skel = run.tracker.skeleton();
    for (ProcId a = 0; a < 7; ++a) {
      for (ProcId b = 0; b < 7; ++b) {
        const auto l = shortest_path_length(skel, a, b);
        if (!l.has_value() || *l == 0) continue;
        ASSERT_LE(*l, 6);
        const Digraph& skel_then =
            run.tracker.skeleton_at(r - static_cast<Round>(*l));
        const LabeledDigraph& gb =
            run.views[static_cast<std::size_t>(b)]->approximation();
        for (ProcId q : skel_then.in_neighbors(a)) {
          const Round label = gb.label(q, a);
          EXPECT_GE(label, r - static_cast<Round>(*l))
              << "seed=" << seed << " a=" << a << " b=" << b << " q=" << q;
          EXPECT_LE(label, r);
        }
      }
    }
  }
}

TEST(Lemma13Test, ForwardedDecisionsTraceToConnectivityDeciders) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomPsrcsParams params;
    params.n = 8;
    params.k = 3;
    params.root_components = 3;
    params.max_core_size = 2;
    RandomPsrcsSource source(seed, params);
    KSetRunConfig config;
    config.k = 3;
    const KSetRunReport report = run_kset(source, config);
    ASSERT_TRUE(report.all_decided);

    // Values decided via Line 29, with their earliest decision round.
    std::map<Value, Round> connectivity_decisions;
    for (ProcId p = 0; p < 8; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      if (report.paths[pi] == DecisionPath::kConnected) {
        const Value v = report.outcomes[pi].decision;
        const Round rr = report.outcomes[pi].decision_round;
        auto it = connectivity_decisions.find(v);
        if (it == connectivity_decisions.end() || rr < it->second) {
          connectivity_decisions[v] = rr;
        }
      }
    }
    // Every forwarded decision carries a value some process decided
    // via Line 29 in a strictly earlier round.
    for (ProcId p = 0; p < 8; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      if (report.paths[pi] != DecisionPath::kForwarded) continue;
      const auto it =
          connectivity_decisions.find(report.outcomes[pi].decision);
      ASSERT_NE(it, connectivity_decisions.end())
          << "forwarded value has no Line-29 origin (seed " << seed << ")";
      EXPECT_LT(it->second, report.outcomes[pi].decision_round);
    }
  }
}

TEST(Lemma14Test, ComponentEstimatesEqualAtRoundN) {
  Rng meta(808);
  for (int trial = 0; trial < 10; ++trial) {
    RandomPsrcsParams params;
    params.n = static_cast<ProcId>(5 + meta.next_below(5));
    params.k = 2;
    params.root_components = 2;
    params.max_core_size = 4;
    params.stabilization_round = 1;  // Lemma 14 argues about C^n via G∩1
    RandomPsrcsSource source(meta.next_u64(), params);
    LiveRun run(source);
    run.sim->run(params.n);  // exactly n rounds

    const SccDecomposition scc =
        strongly_connected_components(run.tracker.skeleton());
    for (const ProcSet& comp : scc.components) {
      Value expected = kNoValue;
      for (ProcId p : comp) {
        const Value x = run.views[static_cast<std::size_t>(p)]->estimate();
        if (expected == kNoValue) expected = x;
        EXPECT_EQ(x, expected)
            << "component " << comp.to_string() << " split at round n";
      }
    }
  }
}

}  // namespace
}  // namespace sskel
