// E7 as a test: Algorithm 1 vs FloodMin vs the LocalMin strawman.
//
//   * Under the synchronous crash model both FloodMin and Algorithm 1
//     are safe; FloodMin is much faster and cheaper (its model is much
//     stronger).
//   * Under a Psrcs(k) link-failure adversary, FloodMin's crash-count
//     premise is violated and it can (and here: does) exceed k values;
//     Algorithm 1 stays within k.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "adversary/crash.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/floodmin.hpp"
#include "kset/local_min.hpp"
#include "kset/runner.hpp"
#include "rounds/simulator.hpp"

namespace sskel {
namespace {

template <typename Proc, typename... Args>
std::vector<std::unique_ptr<Algorithm<Value>>> make_value_procs(
    ProcId n, const std::vector<Value>& proposals, Args... args) {
  std::vector<std::unique_ptr<Algorithm<Value>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<Proc>(
        n, p, proposals[static_cast<std::size_t>(p)], args...));
  }
  return procs;
}

TEST(BaselineTest, BothSafeUnderCrashModel) {
  const ProcId n = 8;
  const int f = 3;
  const int k = 2;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // FloodMin.
    auto crash_src = make_random_crash_source(seed, n, f, f / k + 1);
    Simulator<Value> fm(*crash_src,
                        make_value_procs<FloodMinProcess>(
                            n, default_proposals(n), f, k));
    fm.run(f / k + 1);
    std::set<Value> fm_values;
    for (ProcId p : crash_src->correct_processes()) {
      fm_values.insert(
          static_cast<FloodMinProcess&>(fm.process(p)).decision());
    }
    EXPECT_LE(static_cast<int>(fm_values.size()), k) << "seed " << seed;

    // Algorithm 1 on the same adversary reaches *consensus* among all
    // (crashed processes are internally correct and decide too).
    auto crash_src2 = make_random_crash_source(seed, n, f, f / k + 1);
    KSetRunConfig config;
    config.k = k;
    const KSetRunReport report = run_kset(*crash_src2, config);
    ASSERT_TRUE(report.all_decided);
    EXPECT_EQ(report.distinct_values, 1) << "seed " << seed;
    // FloodMin needs floor(f/k)+1 = 2 rounds; Algorithm 1 pays the
    // skeleton price (> n rounds) for its far weaker assumptions.
    EXPECT_GT(report.last_decision_round, f / k + 1);
  }
}

TEST(BaselineTest, FloodMinUnsafeUnderLinkFailures) {
  // Give FloodMin a Psrcs(k) adversary whose stable skeleton has k
  // isolated singleton roots: every "crash budget" assumption is
  // violated, and min-flooding splinters.
  const ProcId n = 8;
  const int k = 3;
  int floodmin_violations = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPsrcsParams params;
    params.n = n;
    params.k = k;
    params.root_components = k;
    params.max_core_size = 1;
    params.noise_probability = 0.0;  // harshest: only stable edges
    params.follower_edge_probability = 0.0;
    RandomPsrcsSource source(seed, params);

    const int f = 2;  // FloodMin sized for 2 crashes: decides round 1
    Simulator<Value> fm(source, make_value_procs<FloodMinProcess>(
                                    n, default_proposals(n), f, k));
    fm.run(8);
    std::set<Value> values;
    for (ProcId p = 0; p < n; ++p) {
      values.insert(static_cast<FloodMinProcess&>(fm.process(p)).decision());
    }
    if (static_cast<int>(values.size()) > k) ++floodmin_violations;

    // Algorithm 1 on the same run: never more than k.
    RandomPsrcsSource source2(seed, params);
    KSetRunConfig config;
    config.k = k;
    const KSetRunReport report = run_kset(source2, config);
    ASSERT_TRUE(report.all_decided);
    EXPECT_LE(report.distinct_values, k) << "seed " << seed;
  }
  EXPECT_GT(floodmin_violations, 0)
      << "expected at least one FloodMin violation across seeds";
}

TEST(BaselineTest, LocalMinStrawmanViolatesEvenWithGenerousRounds) {
  const ProcId n = 8;
  const int k = 2;
  RandomPsrcsParams params;
  params.n = n;
  params.k = k;
  params.root_components = k;
  params.max_core_size = 1;
  params.noise_probability = 0.0;
  params.follower_edge_probability = 0.0;

  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPsrcsSource source(seed, params);
    Simulator<Value> lm(source, make_value_procs<LocalMinProcess>(
                                    n, default_proposals(n), Round{4}));
    lm.run(6);
    std::set<Value> values;
    for (ProcId p = 0; p < n; ++p) {
      values.insert(static_cast<LocalMinProcess&>(lm.process(p)).decision());
    }
    if (static_cast<int>(values.size()) > k) ++violations;
  }
  EXPECT_GT(violations, 0);
}

}  // namespace
}  // namespace sskel
