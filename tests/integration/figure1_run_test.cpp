// Integration test: Algorithm 1 on the Figure 1 run.
//
// Reproduces the mechanism of Figures 1c-1h: process p6's local
// approximation grows as skeleton knowledge flows along stable edges,
// old transient knowledge ages out, and the run decides with (at most)
// one value per root component.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "adversary/figure1.hpp"
#include "kset/runner.hpp"
#include "kset/skeleton_kset.hpp"
#include "rounds/simulator.hpp"

namespace sskel {
namespace {

class Figure1Run : public ::testing::Test {
 protected:
  void run_and_report(DecisionGuard guard = DecisionGuard::kAfterRoundN) {
    source_ = make_figure1_source();
    KSetRunConfig config;
    config.k = kFigure1K;
    config.guard = guard;
    config.attach_lemma_monitor = true;
    config.tail_rounds = 6;
    report_ = run_kset(*source_, config);
  }

  std::unique_ptr<GraphSource> source_;
  KSetRunReport report_;
};

TEST_F(Figure1Run, AllPropertiesHold) {
  run_and_report();
  EXPECT_TRUE(report_.all_decided);
  EXPECT_TRUE(report_.verdict.all_hold());
  EXPECT_TRUE(report_.lemma_violations.empty())
      << report_.lemma_violations.front();
}

TEST_F(Figure1Run, OneValuePerRootComponent) {
  run_and_report();
  // Root A = {p1, p2} proposes {7, 107} -> decides 7.
  // Root B = {p3, p4, p5} proposes {207, 307, 407} -> decides 207.
  // Follower p6 adopts one of the two.
  EXPECT_EQ(report_.outcomes[0].decision, 7);
  EXPECT_EQ(report_.outcomes[1].decision, 7);
  EXPECT_EQ(report_.outcomes[2].decision, 207);
  EXPECT_EQ(report_.outcomes[3].decision, 207);
  EXPECT_EQ(report_.outcomes[4].decision, 207);
  const Value p6 = report_.outcomes[5].decision;
  EXPECT_TRUE(p6 == 7 || p6 == 207);
  EXPECT_EQ(report_.distinct_values, 2);  // <= k = 3
}

TEST_F(Figure1Run, RootMembersDecideViaConnectivity) {
  run_and_report();
  for (ProcId p = 0; p < 5; ++p) {
    EXPECT_EQ(report_.paths[static_cast<std::size_t>(p)],
              DecisionPath::kConnected)
        << "p" << p;
  }
  // p6 is not in a root component: its approximation always contains
  // root processes it cannot reach back, so it decides via forwarding.
  EXPECT_EQ(report_.paths[5], DecisionPath::kForwarded);
}

TEST_F(Figure1Run, TerminationBoundHolds) {
  for (DecisionGuard guard :
       {DecisionGuard::kAfterRoundN, DecisionGuard::kAtRoundN}) {
    run_and_report(guard);
    EXPECT_TRUE(report_.all_decided);
    EXPECT_LE(report_.last_decision_round, report_.termination_bound(guard));
  }
}

TEST_F(Figure1Run, ApproximationSeriesMatchesMechanism) {
  // Drive the simulator manually and snapshot p6's graph per round,
  // the exact series Figs. 1c-1h illustrate.
  auto source = make_figure1_source();
  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  std::vector<SkeletonKSetProcess*> views;
  for (ProcId p = 0; p < kFigure1N; ++p) {
    auto proc = std::make_unique<SkeletonKSetProcess>(kFigure1N, p,
                                                      100 * p + 7);
    views.push_back(proc.get());
    procs.push_back(std::move(proc));
  }
  Simulator<SkeletonMessage> sim(*source, std::move(procs));

  // Round 1 (Fig. 1c): p6 knows exactly its own in-edges (including
  // the transient p3 -> p6), all label 1.
  sim.step();
  {
    const LabeledDigraph& g = views[5]->approximation();
    EXPECT_EQ(g.label(1, 5), 1);
    EXPECT_EQ(g.label(4, 5), 1);
    EXPECT_EQ(g.label(2, 5), 1);  // transient
    EXPECT_EQ(g.label(5, 5), 1);
    EXPECT_EQ(g.edge_count(), 4);
  }

  // Round 2 (Fig. 1d): fresh in-edges relabel to 2; one-hop knowledge
  // from p2, p3 and p5 arrives with label 1.
  sim.step();
  {
    const LabeledDigraph& g = views[5]->approximation();
    EXPECT_EQ(g.label(1, 5), 2);
    EXPECT_EQ(g.label(4, 5), 2);
    // p2's round-1 in-edges: p1 -> p2 (and transient p4 -> p2).
    EXPECT_EQ(g.label(0, 1), 1);
    EXPECT_EQ(g.label(3, 1), 1);
    // p5's round-1 in-edges: p4 -> p5.
    EXPECT_EQ(g.label(3, 4), 1);
    // p3's round-1 in-edges: p5 -> p3.
    EXPECT_EQ(g.label(4, 2), 1);
  }

  // Rounds 3..6: labels keep advancing; by round 6 = n the purge
  // window (labels <= r - n) begins to matter and all transient
  // knowledge is gone from p6's graph by round 2 + n = 8.
  for (Round r = 3; r <= 8; ++r) sim.step();
  {
    const LabeledDigraph& g = views[5]->approximation();
    // Transient edges died in round 3; the freshest label they can
    // carry is 2, which the purge at round 8 (cutoff 8-6=2) removed.
    EXPECT_EQ(g.label(3, 1), 0);  // transient p4 -> p2 gone
    EXPECT_EQ(g.label(2, 5), 0);  // transient p3 -> p6 gone
    EXPECT_EQ(g.label(5, 0), 0);  // transient p6 -> p1 gone
    // Stable knowledge persists with fresh labels.
    EXPECT_GT(g.label(0, 1), 2);  // p1 -> p2
    EXPECT_GT(g.label(3, 4), 2);  // p4 -> p5
    EXPECT_GT(g.label(1, 5), 2);
    EXPECT_GT(g.label(4, 5), 2);
  }

  // p6's unlabeled approximation now contains the stable skeleton
  // restricted to processes that reach p6 — which is everyone.
  const Digraph unl = views[5]->approximation().unlabeled();
  EXPECT_TRUE(figure1_stable_skeleton().is_subgraph_of(unl));
}

TEST_F(Figure1Run, MessageBytesArePolynomiallySmall) {
  auto source = make_figure1_source();
  KSetRunConfig config;
  config.k = kFigure1K;
  config.measure_bytes = true;
  const KSetRunReport report = run_kset(*source, config);
  // A message is (tag, value, graph); the graph has at most n^2 edges
  // of <= ~5 bytes each — comfortably under n^2 * 8 + 16 bytes.
  EXPECT_LE(report.max_message_bytes, 6 * 6 * 8 + 16);
  EXPECT_GT(report.max_message_bytes, 0);
}

}  // namespace
}  // namespace sskel
