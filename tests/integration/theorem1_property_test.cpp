// Property sweep for Theorem 1 and k-agreement: across many random
// Psrcs(k) adversaries, the stable skeleton has at most k root
// components and Algorithm 1 decides at most k values.
#include <gtest/gtest.h>

#include "adversary/random_psrcs.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "predicates/psrcs.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

struct Theorem1Case {
  ProcId n;
  int k;
  int roots;
  Round stabilization;
};

class Theorem1Sweep : public ::testing::TestWithParam<Theorem1Case> {};

TEST_P(Theorem1Sweep, RootBoundAndAgreementHold) {
  const Theorem1Case c = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomPsrcsParams params;
    params.n = c.n;
    params.k = c.k;
    params.root_components = c.roots;
    params.stabilization_round = c.stabilization;
    params.noise_probability = 0.3;
    RandomPsrcsSource source(mix_seed(4242, seed), params);

    KSetRunConfig config;
    config.k = c.k;
    const KSetRunReport report = run_kset(source, config);

    ASSERT_TRUE(report.all_decided)
        << "n=" << c.n << " k=" << c.k << " seed=" << seed;
    // Theorem 1: at most k root components.
    EXPECT_LE(report.root_components_final.size(),
              static_cast<std::size_t>(c.k));
    // k-agreement, validity.
    EXPECT_TRUE(report.verdict.all_hold())
        << report.verdict.failures.front();
    // The decisions refine the root components: distinct values never
    // exceed the number of root components (each root floods one).
    EXPECT_LE(report.distinct_values,
              static_cast<int>(report.root_components_final.size()));
    // Termination bound of Lemma 11.
    EXPECT_LE(report.last_decision_round,
              report.termination_bound(config.guard));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1Sweep,
    ::testing::Values(Theorem1Case{5, 1, 1, 1}, Theorem1Case{6, 2, 2, 3},
                      Theorem1Case{8, 2, 1, 5}, Theorem1Case{8, 3, 3, 2},
                      Theorem1Case{10, 4, 4, 4}, Theorem1Case{12, 3, 2, 6},
                      Theorem1Case{16, 5, 5, 3}, Theorem1Case{20, 2, 2, 8}),
    [](const ::testing::TestParamInfo<Theorem1Case>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_k" +
             std::to_string(pinfo.param.k) + "_j" +
             std::to_string(pinfo.param.roots) + "_st" +
             std::to_string(pinfo.param.stabilization);
    });

TEST(Theorem1EqualityTest, BoundTightWhenSingletonRootsIsolated) {
  // j = k singleton root components, no followers sharing values:
  // exactly k distinct decisions — Theorem 1 is tight.
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 3;
  params.root_components = 3;
  params.max_core_size = 1;  // singleton roots
  params.follower_edge_probability = 0.0;
  RandomPsrcsSource source(9, params);
  KSetRunConfig config;
  config.k = 3;
  const KSetRunReport report = run_kset(source, config);
  EXPECT_TRUE(report.all_decided);
  EXPECT_EQ(report.root_components_final.size(), 3u);
  EXPECT_EQ(report.distinct_values, 3);
  EXPECT_TRUE(report.verdict.k_agreement);
}

TEST(Theorem1StressTest, ManySeedsNeverViolate) {
  Rng meta(31337);
  for (int trial = 0; trial < 60; ++trial) {
    RandomPsrcsParams params;
    params.n = static_cast<ProcId>(4 + meta.next_below(10));
    params.k = static_cast<int>(1 + meta.next_below(4));
    params.root_components = static_cast<int>(
        1 + meta.next_below(static_cast<std::uint64_t>(
                std::min<ProcId>(static_cast<ProcId>(params.k), params.n))));
    params.stabilization_round =
        static_cast<Round>(1 + meta.next_below(6));
    params.noise_probability = meta.next_double() * 0.5;
    RandomPsrcsSource source(meta.next_u64(), params);

    KSetRunConfig config;
    config.k = params.k;
    const KSetRunReport report = run_kset(source, config);
    ASSERT_TRUE(report.all_decided) << "trial " << trial;
    EXPECT_LE(static_cast<int>(report.root_components_final.size()),
              params.k)
        << "trial " << trial;
    EXPECT_TRUE(report.verdict.all_hold()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sskel
