// Integration: the full KSetRunner analysis stack (SkeletonTracker,
// LemmaMonitor, Psrcs(k) analysis, byte accounting) over the
// *network* substrate — run_kset_on_engine on a NetRoundDriver with
// skewed clocks and lossy links, with zero algorithm-side changes.
//
// The paper's claims are about the model, not the simulator: Theorem 1
// (<= k root components) and Lemma 11's termination bound must hold on
// the derived skeleton of a partially synchronous network exactly as
// they do on an abstract GraphSource.
#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "net/driver.hpp"
#include "predicates/psrcs.hpp"

namespace sskel {
namespace {

/// k singleton hubs, every process assigned to hub (p % k): timely
/// hub->member links riding over an otherwise lossy mesh.
LinkMatrix hub_links(ProcId n, int k, double flaky_probability) {
  Digraph stable(n);
  stable.add_self_loops();
  for (ProcId p = 0; p < n; ++p) {
    stable.add_edge(p % static_cast<ProcId>(k), p);
  }
  LinkMatrix links = LinkMatrix::all_flaky(n, flaky_probability);
  links.upgrade_to_timely(stable, 100, 700);
  return links;
}

TEST(NetRunnerTest, FullReportOverSkewedLossyNetwork) {
  const ProcId n = 9;
  const int k = 3;

  KSetRunConfig config;
  config.k = k;
  config.attach_lemma_monitor = true;
  config.measure_bytes = true;

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    NetConfig net;
    net.round_duration = 1000;
    net.seed = seed;
    for (ProcId p = 0; p < n; ++p) {
      net.skews.push_back((static_cast<SimTime>(p) * 37) % 201);
    }

    NetRoundDriver<SkeletonMessage> driver(net, hub_links(n, k, 0.4),
                                           make_kset_processes(n, config));
    const KSetRunReport report = run_kset_on_engine(driver, config);

    ASSERT_TRUE(report.all_decided) << "seed " << seed;
    EXPECT_EQ(report.n, n);

    // k-set agreement end to end through deadlines and drops.
    EXPECT_TRUE(report.verdict.all_hold()) << "seed " << seed;
    EXPECT_LE(report.distinct_values, k);

    // Lemma 11: every decision lands within max(r_ST,1) + 2n - 1 (+1
    // for the strict guard), measured against the *derived* skeleton.
    EXPECT_LE(report.last_decision_round,
              report.termination_bound(config.guard))
        << "seed " << seed;

    // Theorem 1 on the derived skeleton: the timely hubs form a hub
    // cover, so Psrcs(k) holds and at most k root components survive.
    EXPECT_TRUE(check_psrcs_exact(report.final_skeleton, k).holds);
    EXPECT_LE(report.root_components_final.size(),
              static_cast<std::size_t>(k));

    // The lemma monitor ran over the network-derived rounds and found
    // nothing.
    EXPECT_TRUE(report.lemma_violations.empty())
        << "seed " << seed << ": " << report.lemma_violations.front();

    // Byte accounting flows from the driver's deliveries into the
    // shared trace.
    EXPECT_GT(report.total_messages, 0);
    EXPECT_GT(report.total_bytes, 0);
    EXPECT_GT(report.max_message_bytes, 0);

    // Network-level counters remain accessible on the driver.
    EXPECT_GT(driver.delivered_messages(), 0);
    EXPECT_EQ(driver.rounds_completed(), report.rounds_executed);
  }
}

TEST(NetRunnerTest, SimulatorAndNetworkAgreeOnCleanNetworks) {
  // On an all-timely network the derived graphs are complete every
  // round — exactly what a complete-graph GraphSource produces — so
  // both substrates must reach the same decisions.
  const ProcId n = 5;
  KSetRunConfig config;
  config.k = 1;

  NetConfig net;
  net.round_duration = 1000;
  NetRoundDriver<SkeletonMessage> driver(net, LinkMatrix::all_timely(n, 50, 400),
                                         make_kset_processes(n, config));
  const KSetRunReport over_net = run_kset_on_engine(driver, config);

  ScheduleSource source({Digraph::complete(n)});
  const KSetRunReport over_sim = run_kset(source, config);

  ASSERT_TRUE(over_net.all_decided);
  ASSERT_TRUE(over_sim.all_decided);
  ASSERT_EQ(over_net.outcomes.size(), over_sim.outcomes.size());
  for (std::size_t p = 0; p < over_net.outcomes.size(); ++p) {
    EXPECT_EQ(over_net.outcomes[p].decision, over_sim.outcomes[p].decision);
    EXPECT_EQ(over_net.outcomes[p].decision_round,
              over_sim.outcomes[p].decision_round);
  }
  EXPECT_EQ(over_net.final_skeleton, over_sim.final_skeleton);
}

}  // namespace
}  // namespace sskel
