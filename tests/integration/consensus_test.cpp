// The Sec. V remark: "the algorithm actually solves consensus in
// sufficiently well-behaved runs" — whenever the stable skeleton has a
// single root component, all processes decide one value. Also covers
// the paper's motivating partitioned-consensus scenario.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "adversary/partition.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"

namespace sskel {
namespace {

TEST(ConsensusTest, SingleRootComponentImpliesConsensus) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPsrcsParams params;
    params.n = 10;
    params.k = 3;               // predicate allows up to 3 values...
    params.root_components = 1;  // ...but the topology has one root
    params.stabilization_round = 4;
    RandomPsrcsSource source(seed, params);
    KSetRunConfig config;
    config.k = 1;  // consensus!
    const KSetRunReport report = run_kset(source, config);
    ASSERT_TRUE(report.all_decided) << "seed " << seed;
    EXPECT_EQ(report.root_components_final.size(), 1u);
    EXPECT_EQ(report.distinct_values, 1) << "seed " << seed;
    EXPECT_TRUE(report.verdict.all_hold());
  }
}

struct PartitionCase {
  int m;
  double noise;
};

class PartitionSweep : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionSweep, ConsensusPerPartition) {
  const auto [m, noise] = GetParam();
  const ProcId n = 12;
  PartitionParams params;
  params.blocks = even_blocks(n, m);
  params.cross_noise_probability = noise;
  params.stabilization_round = 5;
  PartitionSource source(99, params);

  KSetRunConfig config;
  config.k = m;
  config.tail_rounds = 4;
  const KSetRunReport report = run_kset(source, config);
  ASSERT_TRUE(report.all_decided);
  EXPECT_TRUE(report.verdict.all_hold());
  EXPECT_EQ(report.root_components_final.size(),
            static_cast<std::size_t>(m));

  // Per-partition consensus holds regardless of transient cross-noise:
  // every block is one strongly connected component of the stable
  // skeleton, and Lemma 14 equalizes estimates inside a component.
  for (const ProcSet& block : source.blocks()) {
    std::set<Value> block_decisions;
    for (ProcId p : block) {
      block_decisions.insert(
          report.outcomes[static_cast<std::size_t>(p)].decision);
    }
    EXPECT_EQ(block_decisions.size(), 1u);
  }
  EXPECT_LE(report.distinct_values, m);

  if (noise == 0.0) {
    // With no cross traffic ever, minima cannot leak across blocks:
    // each block decides one of its *own* proposals and the run
    // realizes exactly m values.
    EXPECT_EQ(report.distinct_values, m);
    for (const ProcSet& block : source.blocks()) {
      std::set<Value> block_proposals;
      Value decided = kNoValue;
      for (ProcId p : block) {
        block_proposals.insert(
            report.outcomes[static_cast<std::size_t>(p)].proposal);
        decided = report.outcomes[static_cast<std::size_t>(p)].decision;
      }
      EXPECT_TRUE(block_proposals.count(decided) > 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Values(PartitionCase{1, 0.0}, PartitionCase{2, 0.0},
                      PartitionCase{3, 0.0}, PartitionCase{4, 0.0},
                      PartitionCase{2, 0.4}, PartitionCase{3, 0.4},
                      PartitionCase{4, 0.4}),
    [](const ::testing::TestParamInfo<PartitionCase>& pinfo) {
      return "m" + std::to_string(pinfo.param.m) + "_noise" +
             std::to_string(static_cast<int>(pinfo.param.noise * 100));
    });

}  // namespace
}  // namespace sskel
