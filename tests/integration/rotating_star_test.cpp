// Integration: per-round synchrony without persistence (E12 as a
// test). The rotating star keeps every round maximally synchronous in
// the HO sense, yet Algorithm 1 sees only the bare-self-loop stable
// skeleton: every process decides as a loner and consensus is
// violated deterministically when the first center is not the
// minimum holder.
#include <gtest/gtest.h>

#include "adversary/rotating.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "predicates/classic.hpp"

namespace sskel {
namespace {

TEST(RotatingStarTest, ConsensusViolatedDespitePerRoundKernels) {
  const ProcId n = 6;
  auto source = make_rotating_star_source(n, 1, /*first_center=*/1);
  KSetRunConfig config;
  config.k = 1;
  const KSetRunReport report = run_kset(*source, config);
  ASSERT_TRUE(report.all_decided);
  // p0 keeps its own minimum (heard only p1's larger value in round
  // 1); everyone else adopted p1's value before PT collapsed.
  EXPECT_EQ(report.distinct_values, 2);
  EXPECT_EQ(report.outcomes[0].decision, 7);
  for (ProcId p = 1; p < n; ++p) {
    EXPECT_EQ(report.outcomes[static_cast<std::size_t>(p)].decision, 107);
  }
  // The stable skeleton shattered into n singleton roots.
  EXPECT_EQ(report.root_components_final.size(),
            static_cast<std::size_t>(n));
  // All decisions came from the processes' own (singleton) graphs.
  for (const DecisionPath path : report.paths) {
    EXPECT_EQ(path, DecisionPath::kConnected);
  }
}

TEST(RotatingStarTest, FixedStarGivesConsensusOnCenterValue) {
  const ProcId n = 6;
  auto source = make_rotating_star_source(n, 100000, /*first_center=*/1);
  KSetRunConfig config;
  config.k = 1;
  const KSetRunReport report = run_kset(*source, config);
  ASSERT_TRUE(report.all_decided);
  EXPECT_EQ(report.distinct_values, 1);
  // The center is the unique root and decides its own value; everyone
  // adopts it via decide forwarding — even p0, whose estimate was
  // smaller (Line 11 overrides the estimate).
  EXPECT_EQ(report.outcomes[0].decision, 107);
  EXPECT_EQ(report.paths[1], DecisionPath::kConnected);
  EXPECT_EQ(report.paths[0], DecisionPath::kForwarded);
}

TEST(RotatingStarTest, SlowRotationStillShatters) {
  const ProcId n = 5;
  auto source = make_rotating_star_source(n, n, /*first_center=*/1);
  KSetRunConfig config;
  config.k = 1;
  config.max_rounds = 12 * n;
  const KSetRunReport report = run_kset(*source, config);
  ASSERT_TRUE(report.all_decided);
  EXPECT_EQ(report.distinct_values, 2);
  EXPECT_EQ(report.root_components_final.size(),
            static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace sskel
