// Integration test for Theorem 2: running Algorithm 1 on the
// impossibility construction yields exactly k distinct values — so the
// run witnesses that (k-1)-set agreement is unachievable under
// Psrcs(k), while k-set agreement still holds (tightness).
#include <gtest/gtest.h>

#include "adversary/impossibility.hpp"
#include "kset/runner.hpp"
#include "predicates/psrcs.hpp"

namespace sskel {
namespace {

struct ImpossibilityCase {
  ProcId n;
  int k;
};

class ImpossibilitySweep
    : public ::testing::TestWithParam<ImpossibilityCase> {};

TEST_P(ImpossibilitySweep, ExactlyKValues) {
  const auto [n, k] = GetParam();
  auto source = make_impossibility_source(n, k);

  KSetRunConfig config;
  config.k = k;
  config.attach_lemma_monitor = (n <= 10);
  config.tail_rounds = 4;
  const KSetRunReport report = run_kset(*source, config);

  ASSERT_TRUE(report.all_decided);
  // Exactly k distinct decisions: the k-1 loners plus the 2-source s
  // each decide their own proposal; followers adopt s's value.
  EXPECT_EQ(report.distinct_values, k);
  // k-set agreement holds (tight), (k-1)-set agreement is violated.
  EXPECT_TRUE(verify_kset(report.outcomes, k).k_agreement);
  EXPECT_FALSE(verify_kset(report.outcomes, k - 1).k_agreement);
  EXPECT_TRUE(report.verdict.validity);
  if (config.attach_lemma_monitor) {
    EXPECT_TRUE(report.lemma_violations.empty())
        << report.lemma_violations.front();
  }

  // The loners and s decide their own values.
  const ProcSet loners = impossibility_loners(n, k);
  for (ProcId p : loners) {
    EXPECT_EQ(report.outcomes[static_cast<std::size_t>(p)].decision,
              report.outcomes[static_cast<std::size_t>(p)].proposal);
  }
  const ProcId s = impossibility_source_process(k);
  EXPECT_EQ(report.outcomes[static_cast<std::size_t>(s)].decision,
            report.outcomes[static_cast<std::size_t>(s)].proposal);
  // Followers adopt s's proposal (the only decide message they see).
  for (ProcId p = s + 1; p < n; ++p) {
    EXPECT_EQ(report.outcomes[static_cast<std::size_t>(p)].decision,
              report.outcomes[static_cast<std::size_t>(s)].proposal);
    EXPECT_EQ(report.paths[static_cast<std::size_t>(p)],
              DecisionPath::kForwarded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImpossibilitySweep,
    ::testing::Values(ImpossibilityCase{4, 2}, ImpossibilityCase{5, 3},
                      ImpossibilityCase{6, 2}, ImpossibilityCase{8, 4},
                      ImpossibilityCase{8, 7}, ImpossibilityCase{12, 5},
                      ImpossibilityCase{16, 3}),
    [](const ::testing::TestParamInfo<ImpossibilityCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_k" +
             std::to_string(pinfo.param.k);
    });

TEST(ImpossibilityPredicateTest, RunSatisfiesPsrcsKNotKMinus1) {
  // The crux of the proof: the run is admissible in Psrcs(k).
  for (const auto& [n, k] :
       std::vector<std::pair<ProcId, int>>{{5, 2}, {6, 3}, {8, 4}}) {
    const Digraph g = impossibility_graph(n, k);
    EXPECT_TRUE(check_psrcs_exact(g, k).holds);
    EXPECT_FALSE(check_psrcs_exact(g, k - 1).holds);
  }
}

}  // namespace
}  // namespace sskel
