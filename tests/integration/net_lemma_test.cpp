// Integration: the approximation lemmas hold over the *network*
// substrate too — the monitor consumes the derived communication
// graphs and the algorithm state exactly as it does on abstract
// sources. This closes the chain: Dwork-style partial synchrony ->
// derived round graphs -> skeleton approximation -> k-set agreement,
// with every lemma checked along the way.
#include <gtest/gtest.h>

#include <memory>

#include "kset/skeleton_kset.hpp"
#include "net/driver.hpp"
#include "skeleton/lemmas.hpp"

namespace sskel {
namespace {

struct NetMonitorHarness {
  explicit NetMonitorHarness(ProcId n, const LinkMatrix& links,
                             NetConfig config)
      : monitor(n) {
    std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
    for (ProcId p = 0; p < n; ++p) {
      auto proc = std::make_unique<SkeletonKSetProcess>(n, p, 100 * p + 7);
      views.push_back(proc.get());
      procs.push_back(std::move(proc));
    }
    driver = std::make_unique<NetRoundDriver<SkeletonMessage>>(
        std::move(config), links, std::move(procs));
    driver->add_observer([this, n](Round r, const Digraph& g) {
      std::vector<ProcessSnapshot> snaps;
      snaps.reserve(static_cast<std::size_t>(n));
      for (const SkeletonKSetProcess* v : views) {
        ProcessSnapshot s;
        s.approx = v->approximation();
        s.pt = v->pt();
        s.estimate = v->estimate();
        s.decided = v->decided();
        s.decided_via_message =
            v->decision_path() == DecisionPath::kForwarded;
        s.decision_round = v->decision_round();
        snaps.push_back(std::move(s));
      }
      monitor.observe_round(r, g, snaps);
    });
  }

  LemmaMonitor monitor;
  std::vector<SkeletonKSetProcess*> views;
  std::unique_ptr<NetRoundDriver<SkeletonMessage>> driver;
};

TEST(NetLemmaTest, MonitorCleanOverFlakyNetwork) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ProcId n = 6;
    NetConfig config;
    config.seed = seed;
    // Timely star keeps the run lively; flaky remainder exercises the
    // shrinking skeleton.
    Digraph stable(n);
    stable.add_self_loops();
    for (ProcId p = 0; p < n; ++p) stable.add_edge(0, p);
    LinkMatrix links = LinkMatrix::all_flaky(n, 0.5);
    links.upgrade_to_timely(stable, 100, 700);

    NetMonitorHarness harness(n, links, config);
    harness.driver->run_rounds(6 * n);
    harness.monitor.finalize();
    EXPECT_TRUE(harness.monitor.violations().empty())
        << "seed=" << seed << ": "
        << harness.monitor.violations().front();
    // The star guarantees Psrcs(1): everyone must have decided.
    for (const SkeletonKSetProcess* v : harness.views) {
      EXPECT_TRUE(v->decided());
    }
  }
}

TEST(NetLemmaTest, MonitorCleanWithClockSkew) {
  const ProcId n = 5;
  NetConfig config;
  config.seed = 11;
  config.round_duration = 1000;
  config.skews = {0, 120, 240, 360, 480};
  NetMonitorHarness harness(n, LinkMatrix::all_timely(n, 50, 400), config);
  harness.driver->run_rounds(4 * n);
  harness.monitor.finalize();
  EXPECT_TRUE(harness.monitor.violations().empty())
      << harness.monitor.violations().front();
}

}  // namespace
}  // namespace sskel
