// Unit tests for the deterministic RNG.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace sskel {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 64ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) {
    ++seen[static_cast<std::size_t>(rng.next_below(5))];
  }
  for (int s : seen) EXPECT_GT(s, 100);  // roughly uniform
}

TEST(RngTest, NextInClosedInterval) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(17);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.3)) ++trues;
  }
  EXPECT_NEAR(static_cast<double>(trues) / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(MixSeedTest, DecorrelatesIndices) {
  const std::uint64_t a = mix_seed(100, 0);
  const std::uint64_t b = mix_seed(100, 1);
  const std::uint64_t c = mix_seed(101, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, mix_seed(100, 0));  // pure function
}

TEST(SplitMix64Test, KnownSequenceAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t v1 = splitmix64(state);
  const std::uint64_t v2 = splitmix64(state);
  EXPECT_NE(v1, v2);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace sskel
