// Unit tests for the CLI flag parser.
#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

CliArgs parse(std::vector<const char*> argv,
              std::vector<std::string> known) {
  return CliArgs(static_cast<int>(argv.size()), argv.data(),
                 std::move(known));
}

TEST(CliTest, EqualsForm) {
  const CliArgs args = parse({"prog", "--n=12", "--rate=0.5"}, {"n", "rate"});
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(CliTest, SpaceForm) {
  const CliArgs args = parse({"prog", "--n", "7"}, {"n"});
  EXPECT_EQ(args.get_int("n", 0), 7);
}

TEST(CliTest, BareBoolean) {
  const CliArgs args = parse({"prog", "--verbose"}, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliTest, Fallbacks) {
  const CliArgs args = parse({"prog"}, {"n", "s"});
  EXPECT_EQ(args.get_int("n", 33), 33);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(args.has("n"));
}

TEST(CliTest, Positional) {
  const CliArgs args = parse({"prog", "file1", "--n=2", "file2"}, {"n"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(CliTest, BoolValues) {
  const CliArgs args =
      parse({"prog", "--a=true", "--b=0", "--c=yes"}, {"a", "b", "c"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

TEST(CliDeathTest, UnknownFlagExits) {
  EXPECT_EXIT(parse({"prog", "--bogus=1"}, {"n"}),
              ::testing::ExitedWithCode(2), "unknown flag");
}

}  // namespace
}  // namespace sskel
