// Tests for the BENCH_*.json writer — above all, that doubles
// round-trip exactly. The bench-regression CI job diffs ns/op values
// across runs; a writer that truncates the mantissa (the old
// precision(10) bug) turns every diff into noise.
#include "util/bench_json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace sskel {
namespace {

/// Extracts the value written for `key` out of the single-record JSON
/// document and parses it back with strtod — the same "any standard
/// parser" contract the CI diff script relies on.
double written_value(double v, const std::string& key = "x") {
  BenchJson json("roundtrip");
  json.add("probe").set(key, v);
  std::ostringstream os;
  json.write(os);
  const std::string doc = os.str();
  const std::string needle = "\"" + key + "\": ";
  const auto pos = doc.find(needle);
  EXPECT_NE(pos, std::string::npos) << doc;
  const char* begin = doc.c_str() + pos + needle.size();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  EXPECT_NE(begin, end) << "no parseable number for " << key << " in " << doc;
  return parsed;
}

TEST(BenchJsonTest, DoublesRoundTripExactly) {
  const std::vector<double> values = {
      0.0,
      0.1,
      1.0 / 3.0,
      2.0 / 3.0,
      6.02e23,
      1e-300,
      12345.6789012345678,
      -98765.43210987654,
      3.141592653589793,
      std::numeric_limits<double>::min(),        // smallest normal
      std::numeric_limits<double>::denorm_min(), // subnormal
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      -std::numeric_limits<double>::epsilon(),
      std::nextafter(1.0, 2.0),  // 1 + ulp: dies under precision(10)
  };
  for (const double v : values) {
    EXPECT_EQ(written_value(v), v) << "value " << v << " did not round-trip";
  }
}

TEST(BenchJsonTest, NonFiniteValuesBecomeNull) {
  BenchJson json("roundtrip");
  json.add("probe")
      .set("inf", std::numeric_limits<double>::infinity())
      .set("nan", std::numeric_limits<double>::quiet_NaN());
  std::ostringstream os;
  json.write(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"inf\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"nan\": null"), std::string::npos) << doc;
}

TEST(BenchJsonTest, IntegersAndStringsSurviveAlongsideDoubles) {
  BenchJson json("roundtrip");
  json.add("probe")
      .set("count", static_cast<std::int64_t>(1234567890123456789LL))
      .set("label", std::string("rotating"))
      .set("ratio", 0.1);
  std::ostringstream os;
  json.write(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"count\": 1234567890123456789"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"label\": \"rotating\""), std::string::npos) << doc;
  EXPECT_EQ(written_value(0.1, "ratio"), 0.1);
}

}  // namespace
}  // namespace sskel
