// Unit tests for the statistics helpers.
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(AccumulatorTest, SingleSample) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, SummaryRenders) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  const std::string s = acc.summary(1);
  EXPECT_NE(s.find("2.0"), std::string::npos);
  EXPECT_NE(s.find("[1.0, 3.0]"), std::string::npos);
}

TEST(PercentileTest, NearestRankInterpolation) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(IntHistogramTest, CountsAndBounds) {
  IntHistogram h;
  h.add(3);
  h.add(1);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.count(3), 2);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(2), 0);
  EXPECT_EQ(h.min_value(), 1);
  EXPECT_EQ(h.max_value(), 7);
  EXPECT_EQ(h.to_string(), "1:1 3:2 7:1");
}

TEST(AccumulatorTest, MeanOfIntegerSamplesIsExact) {
  // The regression behind BENCH_network.json's
  // `mean_late_messages: 296.2000000000001`: a Welford running mean
  // drifts by one rounding per sample. mean() = sum/count is exact
  // when the sum is exactly representable — integer-valued samples
  // always are (up to 2^53).
  Accumulator acc;
  // Five integers summing to 1481; 1481/5 = 296.2 exactly rounds to
  // the double nearest 296.2, with no accumulated drift.
  for (double x : {452.0, 117.0, 334.0, 289.0, 289.0}) acc.add(x);
  EXPECT_EQ(acc.mean(), 1481.0 / 5.0);
  // Many integer samples: mean must still be the exact quotient.
  Accumulator big;
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = static_cast<double>((i * 37) % 1000);
    big.add(x);
    sum += x;
  }
  EXPECT_EQ(big.mean(), sum / 10000.0);
}

TEST(AccumulatorTest, VarianceStillWelfordBacked) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 32.0 / 7.0);  // sample variance
}

TEST(IntHistogramTest, EmptyHistogram) {
  IntHistogram h;
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.min_value(), 0);
  EXPECT_EQ(h.max_value(), 0);
  EXPECT_EQ(h.to_string(), "");
}

}  // namespace
}  // namespace sskel
