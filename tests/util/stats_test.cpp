// Unit tests for the statistics helpers.
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(AccumulatorTest, SingleSample) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, SummaryRenders) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  const std::string s = acc.summary(1);
  EXPECT_NE(s.find("2.0"), std::string::npos);
  EXPECT_NE(s.find("[1.0, 3.0]"), std::string::npos);
}

TEST(PercentileTest, NearestRankInterpolation) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(IntHistogramTest, CountsAndBounds) {
  IntHistogram h;
  h.add(3);
  h.add(1);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.count(3), 2);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(2), 0);
  EXPECT_EQ(h.min_value(), 1);
  EXPECT_EQ(h.max_value(), 7);
  EXPECT_EQ(h.to_string(), "1:1 3:2 7:1");
}

TEST(IntHistogramTest, EmptyHistogram) {
  IntHistogram h;
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.min_value(), 0);
  EXPECT_EQ(h.max_value(), 0);
  EXPECT_EQ(h.to_string(), "");
}

}  // namespace
}  // namespace sskel
