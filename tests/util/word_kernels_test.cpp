// SIMD-vs-scalar equivalence for the word kernels.
//
// Every dispatch tier (scalar, AVX2, AVX-512 — whatever this CPU
// supports) must compute bit-identical results and identical change
// verdicts on the same inputs, including the ragged tails the vector
// paths handle with scalar cleanup. Reference results come from a
// naive per-word loop written here, independent of the kernels.
#include "util/word_kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sskel {
namespace {

using Words = std::vector<std::uint64_t>;

Words random_words(Rng& rng, std::size_t nw, int mode) {
  Words w(nw);
  for (std::uint64_t& v : w) {
    switch (mode) {
      case 0: v = rng.next_u64(); break;
      case 1: v = 0; break;
      case 2: v = ~std::uint64_t{0}; break;
      default: v = rng.next_bool(0.25) ? rng.next_u64() : 0; break;
    }
  }
  return w;
}

std::vector<wk::Simd> supported_tiers() {
  std::vector<wk::Simd> tiers = {wk::Simd::kScalar};
  if (wk::supported(wk::Simd::kAvx2)) tiers.push_back(wk::Simd::kAvx2);
  if (wk::supported(wk::Simd::kAvx512)) tiers.push_back(wk::Simd::kAvx512);
  return tiers;
}

/// Span lengths spanning the interesting shapes: empty, sub-vector,
/// one vector, ragged tails around the 4- and 8-word strides, and a
/// bulk span (1024 words = one n = 65,536 row).
const std::size_t kSpans[] = {0, 1, 3, 4, 7, 8, 9, 31, 64, 129, 1024};

TEST(WordKernelsTest, AllTiersMatchNaiveReference) {
  for (const wk::Simd tier : supported_tiers()) {
    const wk::Kernels& k = wk::ops_for(tier);
    Rng rng(mix_seed(0x5149D, static_cast<std::uint64_t>(tier)));
    for (const std::size_t nw : kSpans) {
      for (int mode = 0; mode < 4; ++mode) {
        const Words a0 = random_words(rng, nw, mode);
        const Words b = random_words(rng, nw, (mode + 1) % 4);
        const Words c = random_words(rng, nw, 3);

        // and_inplace / and_changed / and_diff against one reference.
        Words ref = a0;
        Words ref_diff(nw, 0);
        std::uint64_t ref_removed = 0;
        for (std::size_t i = 0; i < nw; ++i) {
          ref_diff[i] = ref[i] & ~b[i];
          ref_removed |= ref_diff[i];
          ref[i] &= b[i];
        }
        Words d1 = a0;
        k.and_inplace(d1.data(), b.data(), nw);
        EXPECT_EQ(d1, ref) << wk::name(tier) << " nw=" << nw;

        Words d2 = a0;
        const std::uint64_t ch = k.and_changed(d2.data(), b.data(), nw);
        EXPECT_EQ(d2, ref);
        EXPECT_EQ(ch != 0, ref_removed != 0);

        Words d3 = a0;
        Words diff(nw, ~std::uint64_t{0});  // must be fully overwritten
        const std::uint64_t rm = k.and_diff(d3.data(), b.data(), diff.data(),
                                            nw);
        EXPECT_EQ(d3, ref);
        EXPECT_EQ(diff, ref_diff);
        EXPECT_EQ(rm != 0, ref_removed != 0);

        // or_inplace / or_and / andnot_inplace.
        Words r_or = a0;
        for (std::size_t i = 0; i < nw; ++i) r_or[i] |= b[i];
        Words d4 = a0;
        k.or_inplace(d4.data(), b.data(), nw);
        EXPECT_EQ(d4, r_or);

        Words r_oa = a0;
        for (std::size_t i = 0; i < nw; ++i) r_oa[i] |= b[i] & c[i];
        Words d5 = a0;
        k.or_and(d5.data(), b.data(), c.data(), nw);
        EXPECT_EQ(d5, r_oa);

        Words r_an = a0;
        for (std::size_t i = 0; i < nw; ++i) r_an[i] &= ~b[i];
        Words d6 = a0;
        k.andnot_inplace(d6.data(), b.data(), nw);
        EXPECT_EQ(d6, r_an);

        // subset / intersects predicates.
        bool ref_subset = true;
        bool ref_intersects = false;
        for (std::size_t i = 0; i < nw; ++i) {
          if ((a0[i] & ~b[i]) != 0) ref_subset = false;
          if ((a0[i] & b[i]) != 0) ref_intersects = true;
        }
        EXPECT_EQ(k.subset(a0.data(), b.data(), nw), ref_subset);
        EXPECT_EQ(k.intersects(a0.data(), b.data(), nw), ref_intersects);
      }
    }
  }
}

TEST(WordKernelsTest, PredicatesShortCircuitCorrectlyOnLateDifferences) {
  // A difference only in the last word of a long span: the vector
  // paths must not declare the verdict early.
  for (const wk::Simd tier : supported_tiers()) {
    const wk::Kernels& k = wk::ops_for(tier);
    Words a(129, 0);
    Words b(129, ~std::uint64_t{0});
    EXPECT_TRUE(k.subset(a.data(), b.data(), a.size()));
    EXPECT_FALSE(k.intersects(a.data(), b.data(), a.size()));
    a.back() = 1;
    b.back() = 0;
    EXPECT_FALSE(k.subset(a.data(), b.data(), a.size())) << wk::name(tier);
    b.back() = 1;
    EXPECT_TRUE(k.intersects(a.data(), b.data(), a.size())) << wk::name(tier);
  }
}

TEST(WordKernelsTest, PopcountAndSummary) {
  Rng rng(0x909C07);
  for (const std::size_t nw : kSpans) {
    const Words w = random_words(rng, nw, 3);
    std::int64_t ref = 0;
    for (const std::uint64_t v : w) {
      ref += static_cast<std::int64_t>(std::popcount(v));
    }
    EXPECT_EQ(wk::popcount(w.data(), nw), ref);

    const std::size_t sw = (nw + 63) / 64;
    Words summary(sw == 0 ? 1 : sw, ~std::uint64_t{0});
    wk::build_summary(w.data(), nw, summary.data());
    for (std::size_t i = 0; i < nw; ++i) {
      const bool bit = (summary[i / 64] >> (i % 64)) & 1u;
      EXPECT_EQ(bit, w[i] != 0) << "word " << i;
    }
    // Trailing summary bits beyond nw must be zero.
    for (std::size_t i = nw; i < sw * 64; ++i) {
      EXPECT_EQ((summary[i / 64] >> (i % 64)) & 1u, 0u);
    }
  }
}

TEST(WordKernelsTest, ParseRecognizesTierNamesAndAuto) {
  wk::Simd out = wk::Simd::kScalar;
  EXPECT_TRUE(wk::parse("auto", out));
  EXPECT_EQ(out, wk::best_supported());
  EXPECT_TRUE(wk::parse("scalar", out));
  EXPECT_EQ(out, wk::Simd::kScalar);
  if (wk::supported(wk::Simd::kAvx2)) {
    EXPECT_TRUE(wk::parse("avx2", out));
    EXPECT_EQ(out, wk::Simd::kAvx2);
  }
  if (wk::supported(wk::Simd::kAvx512)) {
    EXPECT_TRUE(wk::parse("avx512", out));
    EXPECT_EQ(out, wk::Simd::kAvx512);
  }
  out = wk::Simd::kAvx2;
  EXPECT_FALSE(wk::parse("sse9", out));
  EXPECT_EQ(out, wk::Simd::kAvx2);  // untouched on unknown text
  EXPECT_FALSE(wk::parse("", out));
}

TEST(WordKernelsTest, ForceSwitchesActiveTier) {
  const wk::Simd original = wk::active();
  wk::force(wk::Simd::kScalar);
  EXPECT_EQ(wk::active(), wk::Simd::kScalar);
  // The active table must be the scalar one (spot check one kernel).
  Words a = {0b1100, 0b1010};
  const Words b = {0b0110, 0b0110};
  wk::ops().and_inplace(a.data(), b.data(), a.size());
  EXPECT_EQ(a[0], 0b0100u);
  EXPECT_EQ(a[1], 0b0010u);
  wk::force(original);
  EXPECT_EQ(wk::active(), original);
}

}  // namespace
}  // namespace sskel
