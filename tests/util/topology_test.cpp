#include "util/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace sskel {
namespace {

CpuTopology make_topology(std::vector<CpuSlot> slots, bool probed = true) {
  CpuTopology topology;
  topology.cpus = std::move(slots);
  topology.probed = probed;
  return topology;
}

TEST(Topology, ParseCpuListSingleValuesAndRanges) {
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(Topology, ParseCpuListTrimsWhitespaceAndNewline) {
  EXPECT_EQ(parse_cpu_list("0-1\n"), (std::vector<int>{0, 1}));
  EXPECT_EQ(parse_cpu_list(" 2 , 4 "), (std::vector<int>{2, 4}));
}

TEST(Topology, ParseCpuListSortsAndDedupes) {
  EXPECT_EQ(parse_cpu_list("5,1,3,1,2-3"), (std::vector<int>{1, 2, 3, 5}));
}

TEST(Topology, ParseCpuListSkipsMalformedChunks) {
  EXPECT_EQ(parse_cpu_list(""), (std::vector<int>{}));
  EXPECT_EQ(parse_cpu_list("abc"), (std::vector<int>{}));
  EXPECT_EQ(parse_cpu_list("3-1"), (std::vector<int>{}));   // inverted range
  EXPECT_EQ(parse_cpu_list("1,x,4"), (std::vector<int>{1, 4}));
  EXPECT_EQ(parse_cpu_list("2-"), (std::vector<int>{}));
  EXPECT_EQ(parse_cpu_list("1,,3"), (std::vector<int>{1, 3}));
}

TEST(Topology, FallbackTopologyOneCorePerCpu) {
  CpuTopology topology = fallback_topology(4);
  ASSERT_EQ(topology.logical_count(), 4u);
  EXPECT_FALSE(topology.probed);
  EXPECT_EQ(topology.physical_core_count(), 4u);
  EXPECT_FALSE(topology.has_smt());
  for (std::size_t cpu = 0; cpu < 4; ++cpu) {
    EXPECT_EQ(topology.cpus[cpu].cpu, static_cast<int>(cpu));
    EXPECT_EQ(topology.cpus[cpu].core, static_cast<int>(cpu));
    EXPECT_EQ(topology.cpus[cpu].package, 0);
  }
}

TEST(Topology, FallbackTopologyZeroMeansOne) {
  EXPECT_EQ(fallback_topology(0).logical_count(), 1u);
}

TEST(Topology, PhysicalFirstOrderFlatTopologyIsIdentity) {
  CpuTopology topology = fallback_topology(4);
  EXPECT_EQ(physical_first_order(topology), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Topology, PhysicalFirstOrderSplitsSmtSiblingsBlocked) {
  // Common server numbering: CPUs 0-3 are core primaries, CPUs 4-7
  // their SMT siblings.
  CpuTopology topology = make_topology({
      {0, 0, 0}, {1, 1, 0}, {2, 2, 0}, {3, 3, 0},
      {4, 0, 0}, {5, 1, 0}, {6, 2, 0}, {7, 3, 0},
  });
  EXPECT_TRUE(topology.has_smt());
  EXPECT_EQ(topology.physical_core_count(), 4u);
  EXPECT_EQ(physical_first_order(topology),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Topology, PhysicalFirstOrderSplitsSmtSiblingsInterleaved) {
  // Desktop numbering: siblings adjacent (0,1 share core 0; 2,3 share
  // core 1; ...). Physical-first must pull one CPU per core before any
  // sibling.
  CpuTopology topology = make_topology({
      {0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 0},
      {4, 2, 0}, {5, 2, 0}, {6, 3, 0}, {7, 3, 0},
  });
  EXPECT_EQ(physical_first_order(topology),
            (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(Topology, PhysicalFirstOrderOrdersPackagesBeforeSiblings) {
  // Two packages, two SMT cores each: all four physical cores (both
  // packages) come before any sibling.
  CpuTopology topology = make_topology({
      {0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 0},
      {4, 0, 1}, {5, 0, 1}, {6, 1, 1}, {7, 1, 1},
  });
  EXPECT_EQ(physical_first_order(topology),
            (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(Topology, PhysicalFirstOrderIsAPermutation) {
  CpuTopology topology = make_topology({
      {0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 0}, {8, 4, 1}, {9, 4, 1},
  });
  std::vector<int> order = physical_first_order(topology);
  std::set<int> seen(order.begin(), order.end());
  EXPECT_EQ(order.size(), topology.logical_count());
  EXPECT_EQ(seen.size(), topology.logical_count());
  for (const CpuSlot& slot : topology.cpus) {
    EXPECT_TRUE(seen.count(slot.cpu)) << "cpu " << slot.cpu;
  }
}

TEST(Topology, PlanTileCpusCyclesWhenTilesExceedCpus) {
  CpuTopology topology = make_topology({
      {0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 0},
  });
  // physical-first order is 0,2,1,3; five tiles wrap to the start.
  EXPECT_EQ(plan_tile_cpus(topology, 5), (std::vector<int>{0, 2, 1, 3, 0}));
}

TEST(Topology, PlanTileCpusPrefersDistinctCores) {
  CpuTopology topology = make_topology({
      {0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 0},
      {4, 2, 0}, {5, 2, 0}, {6, 3, 0}, {7, 3, 0},
  });
  std::vector<int> plan = plan_tile_cpus(topology, 4);
  std::set<int> cores;
  for (int cpu : plan) {
    auto it = std::find_if(
        topology.cpus.begin(), topology.cpus.end(),
        [cpu](const CpuSlot& slot) { return slot.cpu == cpu; });
    ASSERT_NE(it, topology.cpus.end());
    cores.insert(it->core);
  }
  EXPECT_EQ(cores.size(), 4u) << "4 tiles on 4-core SMT host must land on "
                                 "4 distinct physical cores";
}

TEST(Topology, PlanTileCpusEmptyInputs) {
  EXPECT_TRUE(plan_tile_cpus(CpuTopology{}, 3).empty());
  EXPECT_TRUE(plan_tile_cpus(fallback_topology(2), 0).empty());
}

TEST(Topology, ProbeNeverReturnsEmpty) {
  CpuTopology topology = probe_cpu_topology();
  EXPECT_GE(topology.logical_count(), 1u);
  // Whatever the host looks like, a plan must exist for any tile count.
  EXPECT_EQ(plan_tile_cpus(topology, 7).size(), 7u);
}

TEST(Topology, CpuListToString) {
  EXPECT_EQ(cpu_list_to_string({}), "");
  EXPECT_EQ(cpu_list_to_string({3}), "3");
  EXPECT_EQ(cpu_list_to_string({0, 2, 4, 1}), "0,2,4,1");
}

}  // namespace
}  // namespace sskel
