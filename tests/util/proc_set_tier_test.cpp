// Randomized dense-vs-tiered equivalence for ProcSet.
//
// The tiered representation (summary words, sparse block lists,
// automatic density transitions) must be invisible through the public
// API. These tests lower the tier threshold so small universes take
// the tiered paths, then drive a *twin* of every set through the same
// operation sequence pinned to the seed's flat dense representation
// (ScopedTierPolicy kDenseOnly) and demand logical equality — members,
// counts, iteration order, hashes, word views — after every step.
// Seeds are fixed, so failures replay exactly.
#include "util/proc_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace sskel {
namespace {

/// Restores the process-wide tier threshold on scope exit (the suite
/// lowers it to 1 word so every multi-word universe is tiered).
class ScopedTierThreshold {
 public:
  explicit ScopedTierThreshold(std::size_t words)
      : previous_(ProcSet::tier_threshold_words()) {
    ProcSet::set_tier_threshold_words(words);
  }
  ScopedTierThreshold(const ScopedTierThreshold&) = delete;
  ScopedTierThreshold& operator=(const ScopedTierThreshold&) = delete;
  ~ScopedTierThreshold() { ProcSet::set_tier_threshold_words(previous_); }

 private:
  std::size_t previous_;
};

/// A random set of `n` ids where each block of 64 is populated with
/// probability `block_p` and each bit of a populated block with
/// `bit_p` — block-structured densities, matching how decayed
/// skeletons actually look.
ProcSet random_set(Rng& rng, ProcId n, double block_p, double bit_p) {
  ProcSet s(n);
  for (ProcId base = 0; base < n; base += 64) {
    if (!rng.next_bool(block_p)) continue;
    for (ProcId p = base; p < n && p < base + 64; ++p) {
      if (rng.next_bool(bit_p)) s.insert(p);
    }
  }
  return s;
}

/// Full logical-equality audit between the tiered set and its dense
/// twin: every observer the library relies on must agree.
void expect_equivalent(const ProcSet& tiered, const ProcSet& dense) {
  ASSERT_EQ(tiered.universe(), dense.universe());
  EXPECT_TRUE(tiered == dense);
  EXPECT_EQ(tiered.count(), dense.count());
  EXPECT_EQ(tiered.empty(), dense.empty());
  EXPECT_EQ(tiered.first(), dense.first());
  EXPECT_EQ(tiered.hash(), dense.hash());
  EXPECT_EQ(tiered.to_vector(), dense.to_vector());
  // Word views must agree block for block (for_each_word only visits
  // nonzero words; collect and compare).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> tw;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> dw;
  tiered.for_each_word([&tw](std::uint32_t w, std::uint64_t v) {
    tw.emplace_back(w, v);
  });
  dense.for_each_word([&dw](std::uint32_t w, std::uint64_t v) {
    dw.emplace_back(w, v);
  });
  EXPECT_EQ(tw, dw);
  EXPECT_EQ(tiered.active_words(), dense.active_words());
  for (std::size_t w = 0; w < tiered.word_span(); ++w) {
    ASSERT_EQ(tiered.word_at(w), dense.word_at(w)) << "word " << w;
  }
}

/// One tiered/dense pair driven through identical operations, each
/// side under its own policy.
struct Twin {
  ProcSet tiered;
  ProcSet dense;

  explicit Twin(ProcId n) : tiered(make_tiered(n)), dense(make_dense(n)) {}

  static ProcSet make_tiered(ProcId n) { return ProcSet(n); }
  static ProcSet make_dense(ProcId n) {
    ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
    return ProcSet(n);
  }

  /// Applies `fn(ProcSet&)` to both sides under the matching policy.
  template <typename Fn>
  void apply(Fn&& fn) {
    fn(tiered);
    {
      ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
      fn(dense);
    }
    expect_equivalent(tiered, dense);
  }
};

TEST(ProcSetTierTest, RandomOperationSequences) {
  ScopedTierThreshold threshold(1);
  for (const ProcId n : {64, 200, 1024}) {
    Rng rng(mix_seed(0x71E2ED, static_cast<std::uint64_t>(n)));
    std::vector<Twin> twins;
    for (int i = 0; i < 6; ++i) twins.emplace_back(n);

    // Operand pool: block-structured random sets mirrored into both
    // policies (operands, like receivers, live in both worlds).
    std::vector<Twin> operands;
    for (int i = 0; i < 8; ++i) {
      const double block_p = 0.1 + 0.2 * static_cast<double>(i % 5);
      ProcSet s = random_set(rng, n, block_p, 0.5);
      Twin t(n);
      for (ProcId p : s) {
        t.tiered.insert(p);
        {
          ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
          t.dense.insert(p);
        }
      }
      expect_equivalent(t.tiered, t.dense);
      operands.push_back(std::move(t));
    }

    int saw_sparse = 0;
    int saw_dense_rep = 0;
    for (int step = 0; step < 400; ++step) {
      Twin& t = twins[rng.pick_index(twins.size())];
      const Twin& o = operands[rng.pick_index(operands.size())];
      const Twin& m = operands[rng.pick_index(operands.size())];
      switch (rng.next_below(10)) {
        case 0: {
          const auto p = static_cast<ProcId>(rng.next_below(
              static_cast<std::uint64_t>(n)));
          t.apply([p](ProcSet& s) { s.insert(p); });
          break;
        }
        case 1: {
          const auto p = static_cast<ProcId>(rng.next_below(
              static_cast<std::uint64_t>(n)));
          t.apply([p](ProcSet& s) { s.erase(p); });
          break;
        }
        case 2:
          t.apply([&](ProcSet& s) {
            s &= (&s == &t.tiered ? o.tiered : o.dense);
          });
          break;
        case 3:
          t.apply([&](ProcSet& s) {
            s |= (&s == &t.tiered ? o.tiered : o.dense);
          });
          break;
        case 4:
          t.apply([&](ProcSet& s) {
            s -= (&s == &t.tiered ? o.tiered : o.dense);
          });
          break;
        case 5: {
          // intersect_changed: verdicts must match too.
          const bool tc = t.tiered.intersect_changed(o.tiered);
          bool dc = false;
          {
            ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
            dc = t.dense.intersect_changed(o.dense);
          }
          EXPECT_EQ(tc, dc);
          expect_equivalent(t.tiered, t.dense);
          break;
        }
        case 6: {
          // intersect_diff: removed sets must be logically equal.
          ProcSet tr(n);
          const bool tc = t.tiered.intersect_diff(o.tiered, tr);
          bool dc = false;
          ProcSet dr = Twin::make_dense(n);
          {
            ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
            dc = t.dense.intersect_diff(o.dense, dr);
          }
          EXPECT_EQ(tc, dc);
          expect_equivalent(tr, dr);
          expect_equivalent(t.tiered, t.dense);
          break;
        }
        case 7:
          // Fused masked fold against two operands.
          t.tiered.or_and(o.tiered, m.tiered);
          {
            ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
            t.dense.or_and(o.dense, m.dense);
          }
          expect_equivalent(t.tiered, t.dense);
          break;
        case 8:
          t.apply([](ProcSet& s) { s.clear(); });
          break;
        case 9: {
          // Relational observers across representations.
          EXPECT_EQ(t.tiered.is_subset_of(o.tiered),
                    t.dense.is_subset_of(o.dense));
          EXPECT_EQ(t.tiered.intersects(o.tiered),
                    t.dense.intersects(o.dense));
          EXPECT_EQ(t.tiered == o.tiered, t.dense == o.dense);
          break;
        }
        default:
          break;
      }
      if (t.tiered.is_sparse()) {
        ++saw_sparse;
      } else {
        ++saw_dense_rep;
      }
      // next_after must agree from arbitrary cursors, including -1.
      const auto cursor = static_cast<ProcId>(
          rng.next_in(-1, static_cast<std::int64_t>(n) - 1));
      EXPECT_EQ(t.tiered.next_after(cursor), t.dense.next_after(cursor));
    }
    // The walk must actually exercise both tiered representations —
    // otherwise the suite is vacuous. Deterministic seeds make this a
    // hard assertion, not a flake.
    EXPECT_GT(saw_sparse, 0) << "n=" << n;
    EXPECT_GT(saw_dense_rep, 0) << "n=" << n;
  }
}

TEST(ProcSetTierTest, DecayTransitionSparsifiesAndStaysEqual) {
  ScopedTierThreshold threshold(1);
  const ProcId n = 1024;
  Rng rng(0xDECA1);
  Twin t(n);
  // Grow to full (dense under kAuto) ...
  t.apply([n](ProcSet& s) { s |= ProcSet::full(n); });
  EXPECT_FALSE(t.tiered.is_sparse());
  // ... then decay through repeated intersections with ever-sparser
  // masks, crossing the sparsify threshold on the way down.
  for (int round = 0; round < 12; ++round) {
    const double keep = 1.0 / static_cast<double>(1 << (round / 2));
    ProcSet mask = random_set(rng, n, keep, 0.7);
    ProcSet dense_mask = Twin::make_dense(n);
    for (ProcId p : mask) {
      ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
      dense_mask.insert(p);
    }
    const bool tc = t.tiered.intersect_changed(mask);
    bool dc = false;
    {
      ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
      dc = t.dense.intersect_changed(dense_mask);
    }
    EXPECT_EQ(tc, dc);
    expect_equivalent(t.tiered, t.dense);
  }
  EXPECT_TRUE(t.tiered.is_sparse());
  EXPECT_FALSE(t.dense.is_sparse());  // policy-pinned twin never converts
  // Regrowth past the densify threshold converts back.
  t.apply([n](ProcSet& s) { s |= ProcSet::full(n); });
  EXPECT_FALSE(t.tiered.is_sparse());
}

TEST(ProcSetTierTest, MixedRepresentationOperands) {
  ScopedTierThreshold threshold(1);
  const ProcId n = 512;
  // A sparse receiver against a dense operand and vice versa: the
  // mixed-epoch paths (word_at fallbacks) must match the pinned twin.
  ProcSet sparse_side(n);
  sparse_side.insert(3);
  sparse_side.insert(400);
  ASSERT_TRUE(sparse_side.is_sparse());
  ProcSet dense_side = ProcSet::full(n);
  ASSERT_FALSE(dense_side.is_sparse());

  ProcSet a = sparse_side;
  a &= dense_side;
  EXPECT_TRUE(a == sparse_side);

  ProcSet b = dense_side;
  b &= sparse_side;
  EXPECT_TRUE(b == sparse_side);
  EXPECT_EQ(b.count(), 2);

  ProcSet c = dense_side;
  c -= sparse_side;
  EXPECT_EQ(c.count(), n - 2);
  EXPECT_FALSE(c.contains(3));
  EXPECT_FALSE(c.contains(400));

  // Equality and hash are representation-independent.
  EXPECT_TRUE(b == a);
  EXPECT_EQ(b.hash(), a.hash());
}

TEST(ProcSetTierTest, OrWordAtMatchesPerBitInsertion) {
  // or_word_at is the bulk write the graph layer leans on
  // (Digraph::or_in_rows64); it must agree with bit-at-a-time insert
  // in every representation, including the sparse form and the
  // densify-on-growth transition.
  ScopedTierThreshold threshold(1);
  for (const ProcId n : {64, 200, 1024}) {
    Rng rng(mix_seed(0x02D5E7, static_cast<std::uint64_t>(n)));
    Twin t(n);
    const std::size_t span = (static_cast<std::size_t>(n) + 63) / 64;
    for (int step = 0; step < 64; ++step) {
      const std::size_t w = rng.pick_index(span);
      // Mask the final partial word so the write stays in-universe.
      const ProcId base = static_cast<ProcId>(64 * w);
      const ProcId width = std::min<ProcId>(64, n - base);
      const std::uint64_t mask = width == 64
                                     ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << width) - 1;
      const std::uint64_t v = rng.next_u64() & mask;
      t.tiered.or_word_at(w, v);
      {
        ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
        for (ProcId b = 0; b < width; ++b) {
          if ((v >> b) & 1U) t.dense.insert(base + b);
        }
      }
      expect_equivalent(t.tiered, t.dense);
    }
  }
}

TEST(ProcSetTierTest, OrWordAtZeroIsANoOpInAnyForm) {
  ScopedTierThreshold threshold(1);
  const ProcId n = 512;
  ProcSet sparse(n);
  sparse.insert(70);
  ASSERT_TRUE(sparse.is_sparse());
  sparse.or_word_at(3, 0);
  EXPECT_TRUE(sparse.is_sparse());
  EXPECT_EQ(sparse.count(), 1);

  ProcSet dense = ProcSet::full(n);
  dense.or_word_at(0, 0);
  EXPECT_EQ(dense.count(), n);
}

TEST(ProcSetTierTest, ArenaRecyclesRetiredDensePayloads) {
  // The word arena parks a dense payload when its set dies and serves
  // the next same-sized materialization from the parked buffer — the
  // mechanism that keeps repeated run construction allocation-free.
  ScopedTierThreshold threshold(1);
  const ProcId n = 8192;
  // Start from a clean thread arena: earlier tests may have parked a
  // same-sized buffer, which would satisfy the first acquisition.
  ProcSet::release_thread_arena();
  const std::int64_t reuses_before = ProcSet::arena_reuses();
  const std::int64_t parked_before = ProcSet::arena_bytes();
  {
    const ProcSet s = ProcSet::full(n);  // dense payload, 128 words
    ASSERT_FALSE(s.is_sparse());
  }
  // Destruction parked the payload instead of freeing it.
  EXPECT_GE(ProcSet::arena_bytes() - parked_before, 1024);
  {
    // A sparse set growing past the densify threshold materializes
    // its payload through the arena — from the parked buffer, not the
    // heap.
    ProcSet s(n);
    ASSERT_TRUE(s.is_sparse());
    for (ProcId p = 0; p < n && s.is_sparse(); p += 64) s.insert(p);
    ASSERT_FALSE(s.is_sparse());
    EXPECT_EQ(ProcSet::arena_reuses(), reuses_before + 1);
    EXPECT_EQ(ProcSet::arena_bytes(), parked_before);
  }
  // ... and parks it again on destruction; release drops it for real.
  EXPECT_GE(ProcSet::arena_bytes() - parked_before, 1024);
  ProcSet::release_thread_arena();
  EXPECT_LE(ProcSet::arena_bytes(), parked_before);
}

TEST(ProcSetTierTest, ClearReleasesTieredPayload) {
  ScopedTierThreshold threshold(1);
  const ProcId n = 4096;
  const std::int64_t before = ProcSet::live_bytes();
  ProcSet s = ProcSet::full(n);
  EXPECT_GE(ProcSet::live_bytes() - before, 512);  // 64 payload words
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.is_sparse());
  // The dead row costs (almost) nothing afterwards: the payload is
  // gone, only the sparse headers remain.
  EXPECT_LT(ProcSet::live_bytes() - before, 128);
}

TEST(ProcSetTierTest, PeakBytesTracksHighWaterMark) {
  ScopedTierThreshold threshold(1);
  const ProcId n = 8192;
  ProcSet::reset_peak_bytes();
  const std::int64_t base = ProcSet::peak_bytes();
  {
    ProcSet s = ProcSet::full(n);
    EXPECT_GE(ProcSet::peak_bytes() - base, 1024);
  }
  // Destruction lowers live but never the peak.
  const std::int64_t after = ProcSet::peak_bytes();
  EXPECT_GE(after - base, 1024);
  ProcSet::reset_peak_bytes();
  EXPECT_LE(ProcSet::peak_bytes(), ProcSet::live_bytes());
}

}  // namespace
}  // namespace sskel
