// Unit tests for table rendering.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sskel {
namespace {

TEST(CellTest, Formats) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(3.0, 0), "3");
  EXPECT_EQ(cell(std::int64_t{-7}), "-7");
  EXPECT_EQ(cell(42), "42");
  EXPECT_EQ(cell(std::size_t{9}), "9");
}

TEST(TableTest, PrintAligned) {
  Table t("demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvEscaping) {
  Table t("csv", {"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableDeathTest, RowArityMismatch) {
  Table t("x", {"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "precondition");
}

}  // namespace
}  // namespace sskel
