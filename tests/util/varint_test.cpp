// Strict ULEB128 semantics: the decoder accepts exactly the encodings
// put_varint produces. Overlong and overflowing byte strings are the
// classic differential-codec bug — two inputs, one value — so every
// rejection class is pinned here.
#include "util/varint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/decode.hpp"

namespace sskel {
namespace {

VarintStatus status_of(const std::vector<std::uint8_t>& bytes,
                       std::uint64_t* out_value = nullptr,
                       std::size_t* out_pos = nullptr) {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  const VarintStatus s = try_get_varint(bytes.data(), bytes.size(), pos, value);
  if (out_value != nullptr) *out_value = value;
  if (out_pos != nullptr) *out_pos = pos;
  return s;
}

TEST(StrictVarintTest, RoundTripIsExactInverse) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 129ull, 300ull, 16383ull, 16384ull,
        (1ull << 32) - 1, 1ull << 32, (1ull << 63) - 1, 1ull << 63,
        0xffffffffffffffffull}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::uint64_t back = 0;
    std::size_t pos = 0;
    EXPECT_EQ(status_of(buf, &back, &pos), VarintStatus::kOk) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(StrictVarintTest, TruncationRejected) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1ull << 40);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const std::vector<std::uint8_t> cut(buf.begin(),
                                        buf.begin() + static_cast<long>(len));
    EXPECT_EQ(status_of(cut), VarintStatus::kTruncated) << len;
  }
}

TEST(StrictVarintTest, OverlongEncodingsRejected) {
  // 0x83 0x00 would decode to 3 under a lax reader; the canonical
  // form of 3 is the single byte 0x03.
  EXPECT_EQ(status_of({0x83, 0x00}), VarintStatus::kOverlong);
  EXPECT_EQ(status_of({0x80, 0x00}), VarintStatus::kOverlong);      // 0
  EXPECT_EQ(status_of({0xff, 0x80, 0x00}), VarintStatus::kOverlong);
  // A canonical multi-byte value is fine.
  std::uint64_t v = 0;
  EXPECT_EQ(status_of({0x80, 0x01}, &v), VarintStatus::kOk);
  EXPECT_EQ(v, 128u);
}

TEST(StrictVarintTest, OverflowPast64BitsRejected) {
  // Ten continuation bytes reach shift 63, where only the low bit of
  // the final byte may be set.
  std::vector<std::uint8_t> max_buf;
  put_varint(max_buf, 0xffffffffffffffffull);
  ASSERT_EQ(max_buf.size(), 10u);
  ASSERT_EQ(max_buf.back(), 0x01);

  std::vector<std::uint8_t> overflow = max_buf;
  overflow.back() = 0x02;  // bit 64
  EXPECT_EQ(status_of(overflow), VarintStatus::kOverflow);
  overflow.back() = 0x7f;
  EXPECT_EQ(status_of(overflow), VarintStatus::kOverflow);
  // An 11th byte can't even be reached: byte 10 must terminate.
  overflow = max_buf;
  overflow.back() = 0x81;
  overflow.push_back(0x00);
  EXPECT_EQ(status_of(overflow), VarintStatus::kOverflow);
}

TEST(StrictVarintTest, ByteReaderRewindsToFieldStartOnFailure) {
  // The reader's error offset should point at the bad field, not at
  // the byte where the scan happened to stop.
  const std::vector<std::uint8_t> bytes = {0x07, 0x83, 0x00};
  ByteReader reader(bytes.data(), bytes.size());
  std::uint64_t v = 0;
  ASSERT_TRUE(reader.read_varint(v, "first"));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(reader.read_varint(v, "second"));
  EXPECT_EQ(reader.error().status, DecodeStatus::kOverlongVarint);
  EXPECT_EQ(reader.error().offset, 1u);
  EXPECT_EQ(reader.pos(), 1u);
}

TEST(StrictVarintTest, ReadVarintMaxChecksBeforeNarrowing) {
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, (1ull << 32) + 5);
  ByteReader reader(bytes.data(), bytes.size());
  std::uint64_t v = 0;
  EXPECT_FALSE(reader.read_varint_max(v, 0xffffffffull, "field"));
  EXPECT_EQ(reader.error().status, DecodeStatus::kValueOutOfRange);
  EXPECT_EQ(reader.error().offset, 0u);
}

TEST(StrictVarintDeathTest, TrustedGetVarintAbortsOnMalformedBytes) {
  const std::vector<std::uint8_t> overlong = {0x83, 0x00};
  std::size_t pos = 0;
  EXPECT_DEATH((void)get_varint(overlong, pos), "precondition");
}

}  // namespace
}  // namespace sskel
