// Unit tests for ProcSet: the set algebra everything else rests on.
#include "util/proc_set.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sskel {
namespace {

TEST(ProcSetTest, EmptyAndFull) {
  ProcSet empty(10);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0);
  EXPECT_EQ(empty.universe(), 10);

  ProcSet full = ProcSet::full(10);
  EXPECT_FALSE(full.empty());
  EXPECT_EQ(full.count(), 10);
  for (ProcId p = 0; p < 10; ++p) EXPECT_TRUE(full.contains(p));
}

TEST(ProcSetTest, FullTrimsBeyondUniverse) {
  // Universe sizes around the 64-bit word boundary must not leak bits.
  for (ProcId n : {1, 63, 64, 65, 127, 128, 129}) {
    ProcSet full = ProcSet::full(n);
    EXPECT_EQ(full.count(), n) << "n=" << n;
    EXPECT_EQ(full.to_vector().size(), static_cast<std::size_t>(n));
  }
}

TEST(ProcSetTest, InsertEraseContains) {
  ProcSet s(100);
  s.insert(3);
  s.insert(64);
  s.insert(99);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(), 3);
  s.erase(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.count(), 2);
  s.erase(64);  // idempotent
  EXPECT_EQ(s.count(), 2);
}

TEST(ProcSetTest, SingletonAndOf) {
  ProcSet s = ProcSet::singleton(8, 5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.contains(5));

  ProcSet t = ProcSet::of(8, {1, 3, 5});
  EXPECT_EQ(t.count(), 3);
  EXPECT_TRUE(t.contains(1));
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(5));
}

TEST(ProcSetTest, SetAlgebra) {
  const ProcSet a = ProcSet::of(10, {1, 2, 3, 7});
  const ProcSet b = ProcSet::of(10, {2, 3, 4});

  EXPECT_EQ((a & b), ProcSet::of(10, {2, 3}));
  EXPECT_EQ((a | b), ProcSet::of(10, {1, 2, 3, 4, 7}));
  EXPECT_EQ((a - b), ProcSet::of(10, {1, 7}));
  EXPECT_EQ((b - a), ProcSet::of(10, {4}));
}

TEST(ProcSetTest, SubsetAndIntersects) {
  const ProcSet a = ProcSet::of(10, {1, 2});
  const ProcSet b = ProcSet::of(10, {1, 2, 3});
  const ProcSet c = ProcSet::of(10, {7, 8});

  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  // Empty set is a subset of anything and intersects nothing.
  const ProcSet empty(10);
  EXPECT_TRUE(empty.is_subset_of(a));
  EXPECT_FALSE(empty.intersects(a));
}

TEST(ProcSetTest, IterationAscending) {
  const ProcSet s = ProcSet::of(200, {0, 5, 63, 64, 65, 130, 199});
  std::vector<ProcId> seen;
  for (ProcId p : s) seen.push_back(p);
  EXPECT_EQ(seen, (std::vector<ProcId>{0, 5, 63, 64, 65, 130, 199}));
}

TEST(ProcSetTest, FirstAndNextAfter) {
  const ProcSet s = ProcSet::of(70, {5, 64});
  EXPECT_EQ(s.first(), 5);
  EXPECT_EQ(s.next_after(-1), 5);  // cursor before the beginning
  EXPECT_EQ(s.next_after(4), 5);
  EXPECT_EQ(s.next_after(5), 64);
  EXPECT_EQ(s.next_after(64), -1);
  EXPECT_EQ(ProcSet(70).first(), -1);
}

TEST(ProcSetTest, ToStringFormat) {
  EXPECT_EQ(ProcSet(4).to_string(), "{}");
  EXPECT_EQ(ProcSet::of(4, {0, 2}).to_string(), "{p0, p2}");
}

TEST(ProcSetTest, EraseCurrentWhileIterating) {
  // The purge/prune loops in LabeledDigraph erase the *current*
  // member while iterating; next_after only scans strictly greater
  // bits, so this is part of the iterator contract.
  ProcSet s = ProcSet::of(70, {1, 3, 5, 64, 66});
  std::vector<ProcId> seen;
  for (ProcId p : s) {
    seen.push_back(p);
    if (p == 3 || p == 64) s.erase(p);
  }
  EXPECT_EQ(seen, (std::vector<ProcId>{1, 3, 5, 64, 66}));
  EXPECT_EQ(s, ProcSet::of(70, {1, 5, 66}));
}

TEST(ProcSetTest, HashDistinguishesAndAgrees) {
  const ProcSet a = ProcSet::of(64, {1, 5});
  const ProcSet b = ProcSet::of(64, {1, 5});
  const ProcSet c = ProcSet::of(64, {1, 6});
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(ForEachSubsetTest, EnumeratesAllCombinations) {
  const ProcSet universe = ProcSet::full(6);
  int count = 0;
  std::set<std::uint64_t> distinct;
  for_each_subset(universe, 3, [&](const ProcSet& s) {
    EXPECT_EQ(s.count(), 3);
    distinct.insert(s.hash());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 20);  // C(6,3)
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(ForEachSubsetTest, RespectsRestrictedUniverseMembers) {
  const ProcSet members = ProcSet::of(10, {2, 4, 6, 8});
  int count = 0;
  for_each_subset(members, 2, [&](const ProcSet& s) {
    EXPECT_TRUE(s.is_subset_of(members));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 6);  // C(4,2)
}

TEST(ForEachSubsetTest, EarlyExit) {
  int count = 0;
  const bool completed =
      for_each_subset(ProcSet::full(6), 2, [&](const ProcSet&) {
        ++count;
        return count < 3;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3);
}

TEST(ForEachSubsetTest, DegenerateSizes) {
  int count = 0;
  // k = 0: exactly one (empty) subset.
  for_each_subset(ProcSet::full(4), 0, [&](const ProcSet& s) {
    EXPECT_TRUE(s.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  // k > |members|: no subsets.
  count = 0;
  EXPECT_TRUE(for_each_subset(ProcSet::full(3), 5, [&](const ProcSet&) {
    ++count;
    return true;
  }));
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace sskel
