// The SSKC campaign-checkpoint container (DESIGN.md §15): canonical
// round-trips over empty and real folded state, plus the hostile-input
// sweeps every codec in this repo gets — truncation at every byte
// boundary, single-bit flips over the whole encoding, structural
// corruption of the magic/version/frame scaffolding — all of which
// must end in a DecodeError, never an abort, OOM or OOB access. SSKC
// is held to the strong canonicality law: any accepted byte string
// re-encodes to itself.
#include "campaign/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adversary/partition.hpp"
#include "mc/scenario.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

/// A checkpoint with real folded state, so accumulators, histograms,
/// the scenario string and the runs == trials_folded invariant are
/// all live (jobs fold different trial counts to keep them distinct).
CampaignCheckpoint sample_checkpoint(std::size_t jobs,
                                     std::int64_t base_trials) {
  PartitionParams params;
  params.blocks = even_blocks(4, 2);
  const PartitionScenario scenario(std::move(params));
  KSetRunConfig config;
  config.k = 2;

  CampaignCheckpoint checkpoint;
  checkpoint.spec_fingerprint = 0x5353'4b43'0000'0001ull;
  for (std::size_t j = 0; j < jobs; ++j) {
    JobCheckpoint job;
    job.summary.scenario = scenario.name();
    job.summary.bytes_measured = config.measure_bytes;
    const std::int64_t trials = base_trials + static_cast<std::int64_t>(j);
    for (std::int64_t t = 0; t < trials; ++t) {
      const ScenarioTrial trial = scenario.run_trial(
          mix_seed(0xFEED + j, static_cast<std::uint64_t>(t)), config);
      fold_scenario_trial(job.summary, trial, config);
      ++job.trials_folded;
    }
    checkpoint.jobs.push_back(std::move(job));
  }
  return checkpoint;
}

/// Walks the frame sequence and returns the byte offset of frame
/// `index`'s payload (after its type byte and length varint). Used to
/// tamper with specific fields without hardcoding offsets.
std::size_t frame_payload_offset(const std::vector<std::uint8_t>& bytes,
                                 std::size_t index) {
  auto read_varint_at = [&](std::size_t& pos) {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t byte = bytes.at(pos++);
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  };
  std::size_t pos = 4;           // magic
  (void)read_varint_at(pos);     // version
  for (std::size_t f = 0;; ++f) {
    ++pos;                       // frame type
    const std::uint64_t len = read_varint_at(pos);
    if (f == index) return pos;
    pos += len;
  }
}

TEST(CheckpointCodecTest, EmptyRoundTripIsCanonical) {
  CampaignCheckpoint empty;
  empty.spec_fingerprint = 0xABCDEF;
  const std::vector<std::uint8_t> bytes = encode_checkpoint(empty);
  DecodeResult<CampaignCheckpoint> back = decode_checkpoint(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value().spec_fingerprint, 0xABCDEFu);
  EXPECT_TRUE(back.value().jobs.empty());
  EXPECT_EQ(encode_checkpoint(back.value()), bytes);
}

TEST(CheckpointCodecTest, FoldedStateRoundTripsBitExactly) {
  const CampaignCheckpoint checkpoint = sample_checkpoint(2, 5);
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  DecodeResult<CampaignCheckpoint> back = decode_checkpoint(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  ASSERT_EQ(back.value().jobs.size(), checkpoint.jobs.size());
  EXPECT_EQ(back.value().spec_fingerprint, checkpoint.spec_fingerprint);
  for (std::size_t j = 0; j < checkpoint.jobs.size(); ++j) {
    EXPECT_EQ(back.value().jobs[j].trials_folded,
              checkpoint.jobs[j].trials_folded);
    // Bit-equality of every trial-derived summary field, through the
    // same projection the campaign's resume gate uses.
    EXPECT_EQ(encode_summary_trial_fields(back.value().jobs[j].summary),
              encode_summary_trial_fields(checkpoint.jobs[j].summary));
  }
  EXPECT_EQ(encode_checkpoint(back.value()), bytes);
}

TEST(CheckpointCodecTest, ExtremeFingerprintRoundTrips) {
  CampaignCheckpoint checkpoint;
  checkpoint.spec_fingerprint = ~0ull;
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  DecodeResult<CampaignCheckpoint> back = decode_checkpoint(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().spec_fingerprint, ~0ull);
}

TEST(CheckpointCodecTest, TruncationAtEveryPrefixRejected) {
  // A checkpoint is only complete at its kEnd frame, so every proper
  // prefix must be rejected (and must not crash while being rejected).
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_checkpoint(2, 4));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    DecodeResult<CampaignCheckpoint> result = decode_checkpoint(prefix);
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
  }
}

TEST(CheckpointCodecTest, SingleBitFlipsRejectedOrCanonical) {
  // Flipping any single bit either produces a rejected byte string or
  // another valid checkpoint — and in the latter case the canonicality
  // law still holds: the mutant re-encodes to exactly itself.
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_checkpoint(1, 6));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutant = bytes;
      mutant[i] = static_cast<std::uint8_t>(mutant[i] ^ (1u << bit));
      DecodeResult<CampaignCheckpoint> result = decode_checkpoint(mutant);
      if (result.ok()) {
        EXPECT_EQ(encode_checkpoint(result.value()), mutant)
            << "byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(CheckpointCodecTest, BadMagicRejected) {
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(CampaignCheckpoint{});
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    mutant[i] = static_cast<std::uint8_t>(mutant[i] + 1);
    EXPECT_FALSE(decode_checkpoint(mutant).ok()) << "magic byte " << i;
  }
}

TEST(CheckpointCodecTest, WrongVersionRejected) {
  std::vector<std::uint8_t> bytes = encode_checkpoint(CampaignCheckpoint{});
  ASSERT_EQ(bytes[4], 1);  // version varint, single byte
  for (const std::uint8_t version : {std::uint8_t{0}, std::uint8_t{2}}) {
    std::vector<std::uint8_t> mutant = bytes;
    mutant[4] = version;
    EXPECT_FALSE(decode_checkpoint(mutant).ok())
        << "version " << int(version);
  }
}

TEST(CheckpointCodecTest, TrailingBytesRejected) {
  std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_checkpoint(1, 3));
  bytes.push_back(0x00);
  EXPECT_FALSE(decode_checkpoint(bytes).ok());
}

TEST(CheckpointCodecTest, RunsTrialsFoldedMismatchRejected) {
  // The kJob invariant: the folded-trials count in the frame must
  // equal summary.runs in the body. Bump the count varint (frame 1 is
  // the first kJob; its payload starts with trials_folded) and the
  // decoder must refuse — a checkpoint claiming more folded trials
  // than its summary absorbed would resume into silent corruption.
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_checkpoint(1, 3));
  const std::size_t job_payload = frame_payload_offset(bytes, 1);
  ASSERT_EQ(bytes[job_payload], 3);  // trials_folded = 3, one varint byte
  std::vector<std::uint8_t> mutant = bytes;
  mutant[job_payload] = 4;
  EXPECT_FALSE(decode_checkpoint(mutant).ok());
}

TEST(CheckpointCodecTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(fnv1a64({}), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64({'a'}), 0xaf63dc4c8601ec8cull);
  // Digest inequality is the CLI's "different fold" signal.
  EXPECT_NE(fnv1a64({1, 2, 3}), fnv1a64({1, 2, 4}));
}

TEST(CheckpointCodecTest, TrialFieldProjectionSeparatesFolds) {
  // Summaries that folded different trials must project to different
  // bytes; the same fold must project identically.
  const CampaignCheckpoint a = sample_checkpoint(1, 4);
  const CampaignCheckpoint b = sample_checkpoint(1, 4);
  const CampaignCheckpoint c = sample_checkpoint(1, 5);
  EXPECT_EQ(encode_summary_trial_fields(a.jobs[0].summary),
            encode_summary_trial_fields(b.jobs[0].summary));
  EXPECT_NE(encode_summary_trial_fields(a.jobs[0].summary),
            encode_summary_trial_fields(c.jobs[0].summary));
}

}  // namespace
}  // namespace sskel
