// The checkpointed campaign engine (DESIGN.md §15): kill + resume
// lands bit-identically on the uninterrupted run across tile counts
// and kill points (including a job boundary), torn checkpoint files
// fall back to the surviving twin, misbehaving trials self-archive as
// replayable SSKT captures, the spec parser accepts the documented
// grammar and rejects everything else, and streaming progress records
// tick monotonically.
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/crash.hpp"
#include "adversary/partition.hpp"
#include "campaign/spec.hpp"
#include "kset/runner.hpp"
#include "rounds/record.hpp"
#include "rounds/trace.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

namespace fs = std::filesystem;

/// Scratch directory helper: fresh on construction, removed on
/// destruction, so failed tests cannot poison later ones.
struct ScratchDir {
  explicit ScratchDir(const char* name) : path(fs::path(".") / name) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  fs::path path;
};

std::shared_ptr<PartitionScenario> make_partition_scenario() {
  PartitionParams params;
  params.blocks = even_blocks(4, 2);
  params.cross_noise_probability = 0.0;
  params.stabilization_round = 1;
  return std::make_shared<PartitionScenario>(std::move(params));
}

/// A two-job spec (different scenarios, different trial counts) so
/// kill points can land inside either job or exactly on the boundary.
CampaignSpec two_job_spec() {
  CampaignSpec spec;
  spec.config.k = 2;
  spec.jobs.push_back(CampaignJob{"conv", make_partition_scenario(), 42, 60});
  spec.jobs.push_back(CampaignJob{
      "cr", std::make_shared<CrashScenario>(5, 1, 3), 7, 40});
  return spec;
}

std::vector<std::vector<std::uint8_t>> job_digests(
    const CampaignResult& result) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const McSummary& summary : result.summaries) {
    out.push_back(encode_summary_trial_fields(summary));
  }
  return out;
}

TEST(CampaignTest, UninterruptedRunMatchesBatchPlane) {
  // The campaign's streaming scheduler must fold exactly what one
  // McTilePlane::run batch folds, job by job.
  const CampaignSpec spec = two_job_spec();
  CampaignEngine engine(spec, CampaignOptions{});
  const CampaignResult result = engine.run();
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.summaries.size(), 2u);

  for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
    McTilePlane plane(*spec.jobs[j].scenario, McPlaneOptions{});
    const McSummary batch =
        plane.run(spec.jobs[j].master_seed,
                  static_cast<int>(spec.jobs[j].trials), spec.config);
    EXPECT_EQ(encode_summary_trial_fields(result.summaries[j]),
              encode_summary_trial_fields(batch))
        << "job " << spec.jobs[j].name;
  }
}

TEST(CampaignTest, KillResumeBitIdenticalAcrossTilesAndKillPoints) {
  const CampaignSpec spec = two_job_spec();

  // Uninterrupted reference fold, single plane per job.
  CampaignEngine reference_engine(spec, CampaignOptions{});
  const auto reference = job_digests(reference_engine.run());

  // Kill points inside job 0, at the exact job boundary (60), inside
  // job 1, and one trial before the natural end.
  for (const unsigned tiles : {1u, 2u, 4u}) {
    for (const std::int64_t kill : {1, 17, 60, 73, 99}) {
      ScratchDir state("campaign_test.kill");
      CampaignOptions killed_options;
      killed_options.plane.tiles = tiles;
      killed_options.checkpoint_every = 7;  // boundaries off the kill grid
      killed_options.state_dir = state.path.string();
      killed_options.stop_after_trials = kill;
      CampaignEngine killed(spec, killed_options);
      const CampaignResult interrupted = killed.run();
      EXPECT_FALSE(interrupted.completed);
      EXPECT_EQ(interrupted.stats.trials_folded, kill);

      CampaignOptions resume_options = killed_options;
      resume_options.stop_after_trials = -1;
      CampaignEngine resumer(spec, resume_options);
      const CampaignResult resumed = resumer.resume();
      ASSERT_TRUE(resumed.completed);
      EXPECT_EQ(resumed.stats.trials_folded,
                spec.jobs[0].trials + spec.jobs[1].trials - kill);
      EXPECT_EQ(job_digests(resumed), reference)
          << "tiles=" << tiles << " kill=" << kill;
    }
  }
}

TEST(CampaignTest, ResumeWithoutCheckpointRunsFresh) {
  ScratchDir state("campaign_test.fresh");
  const CampaignSpec spec = two_job_spec();
  CampaignEngine reference_engine(spec, CampaignOptions{});
  const auto reference = job_digests(reference_engine.run());

  CampaignOptions options;
  options.state_dir = state.path.string();
  CampaignEngine engine(spec, options);
  const CampaignResult result = engine.resume();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(job_digests(result), reference);
}

/// Folds `trials` partition trials into a single-job checkpoint — a
/// real folded prefix, as the engine would snapshot it.
CampaignCheckpoint folded_prefix(std::uint64_t fingerprint,
                                 std::int64_t trials) {
  const auto scenario = make_partition_scenario();
  KSetRunConfig config;
  config.k = 2;
  CampaignCheckpoint checkpoint;
  checkpoint.spec_fingerprint = fingerprint;
  JobCheckpoint job;
  job.summary.scenario = scenario->name();
  job.summary.bytes_measured = config.measure_bytes;
  for (std::int64_t t = 0; t < trials; ++t) {
    fold_scenario_trial(
        job.summary,
        scenario->run_trial(mix_seed(42, static_cast<std::uint64_t>(t)),
                            config),
        config);
    ++job.trials_folded;
  }
  checkpoint.jobs.push_back(std::move(job));
  return checkpoint;
}

TEST(CampaignTest, WriterAlternatesSlotsAndFallsBackFromTornFile) {
  ScratchDir state("campaign_test.writer");
  const fs::path file_a = state.path / CheckpointWriter::kFileA;
  const fs::path file_b = state.path / CheckpointWriter::kFileB;
  {
    CheckpointWriter writer(state.path);
    writer.offer(folded_prefix(0xF00D, 5));
    writer.flush();
    EXPECT_TRUE(fs::exists(file_a));   // first generation → slot a
    EXPECT_FALSE(fs::exists(file_b));
    writer.offer(folded_prefix(0xF00D, 10));
    writer.flush();
    EXPECT_TRUE(fs::exists(file_b));   // second generation → slot b
    EXPECT_EQ(writer.checkpoints_written(), 2);
  }

  const auto latest = CheckpointWriter::load_latest(state.path);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->jobs[0].trials_folded, 10);  // newest wins

  // Tear the newest generation mid-write: load_latest must skip the
  // corrupt file and fall back to the surviving twin.
  fs::resize_file(file_b, fs::file_size(file_b) / 2);
  const auto fallback = CheckpointWriter::load_latest(state.path);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->jobs[0].trials_folded, 5);

  // Both generations torn: no checkpoint, never an error.
  fs::resize_file(file_a, 3);
  EXPECT_FALSE(CheckpointWriter::load_latest(state.path).has_value());
}

TEST(CampaignTest, CoalescingKeepsOnlyTheFreshestSnapshot) {
  ScratchDir state("campaign_test.coalesce");
  CheckpointWriter writer(state.path);
  // Burst of offers: the writer may persist any prefix of them, but
  // after flush the latest must be what load_latest sees, and
  // writes + coalesces must account for every offer.
  for (std::int64_t trials = 1; trials <= 8; ++trials) {
    writer.offer(folded_prefix(0xC0A1, trials));
  }
  writer.flush();
  EXPECT_EQ(writer.checkpoints_written() + writer.checkpoints_coalesced(), 8);
  const auto latest = CheckpointWriter::load_latest(state.path);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->jobs[0].trials_folded, 8);
}

TEST(CampaignTest, LoadLatestPrefersTheMatchingFingerprint) {
  ScratchDir state("campaign_test.fpmatch");
  {
    CheckpointWriter writer(state.path);
    // A stale checkpoint from a previous spec with *more* folded
    // trials, then the current spec's with fewer.
    writer.offer(folded_prefix(0xAAAA, 20));
    writer.flush();
    writer.offer(folded_prefix(0xBBBB, 5));
    writer.flush();
  }

  // No expectation: plain newest-by-folded-count wins (the stale one).
  const auto plain = CheckpointWriter::load_latest(state.path);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->spec_fingerprint, 0xAAAAu);

  // With the expected fingerprint, the matching generation wins even
  // though it folded fewer trials.
  const auto matched = CheckpointWriter::load_latest(state.path, 0xBBBB);
  ASSERT_TRUE(matched.has_value());
  EXPECT_EQ(matched->spec_fingerprint, 0xBBBBu);
  EXPECT_EQ(matched->jobs[0].trials_folded, 5);

  // No generation matches: fall back to newest-wins so the caller
  // can observe the mismatch and refuse.
  const auto mismatch = CheckpointWriter::load_latest(state.path, 0xCCCC);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(mismatch->spec_fingerprint, 0xAAAAu);
}

TEST(CampaignTest, RunClearsStaleCheckpointsFromAPreviousSpec) {
  // Reuse one state dir across specs: an interrupted run of spec A
  // leaves a checkpoint with many folded trials; a fresh run() of
  // spec B must clear it, so a later resume() of B continues from
  // B's own (smaller) checkpoint instead of tripping over A's.
  ScratchDir state("campaign_test.stale");
  const CampaignSpec old_spec = two_job_spec();
  CampaignOptions options;
  options.state_dir = state.path.string();
  options.checkpoint_every = 7;
  options.stop_after_trials = 90;
  {
    CampaignEngine old_engine(old_spec, options);
    EXPECT_FALSE(old_engine.run().completed);
  }

  CampaignSpec new_spec = two_job_spec();
  new_spec.jobs[1].trials = 20;  // different spec, different fingerprint
  CampaignOptions killed_options = options;
  killed_options.stop_after_trials = 30;
  // Cadence off: the killed run writes exactly one generation (the
  // kill snapshot), so without the stale-file handling the old spec's
  // checkpoint would survive in the other slot with more folded
  // trials and shadow it.
  killed_options.checkpoint_every = 0;
  {
    CampaignEngine killed(new_spec, killed_options);
    EXPECT_FALSE(killed.run().completed);
  }

  CampaignEngine reference_engine(new_spec, CampaignOptions{});
  const auto reference = job_digests(reference_engine.run());
  CampaignOptions resume_options = options;
  resume_options.stop_after_trials = -1;
  CampaignEngine resumer(new_spec, resume_options);
  const CampaignResult resumed = resumer.resume();
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(job_digests(resumed), reference);
}

TEST(CampaignTest, TornNewestCheckpointStillResumesBitIdentical) {
  const CampaignSpec spec = two_job_spec();
  ScratchDir state("campaign_test.torn");
  CampaignOptions options;
  options.checkpoint_every = 5;
  options.state_dir = state.path.string();
  options.stop_after_trials = 73;
  CampaignEngine killed(spec, options);
  (void)killed.run();

  // Tear whichever file load_latest would pick. Resume must fall back
  // to the surviving generation (or a fresh run if none survives) and
  // still land bit-identically — it just re-folds more trials.
  auto folded = [](const fs::path& file) -> std::int64_t {
    std::ifstream in(file, std::ios::binary);
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    const DecodeResult<CampaignCheckpoint> ckpt = decode_checkpoint(bytes);
    if (!ckpt.ok()) return -1;
    std::int64_t total = 0;
    for (const JobCheckpoint& job : ckpt.value().jobs) {
      total += job.trials_folded;
    }
    return total;
  };
  const fs::path file_a = state.path / CheckpointWriter::kFileA;
  const fs::path file_b = state.path / CheckpointWriter::kFileB;
  const fs::path newest =
      (fs::exists(file_b) && folded(file_b) > folded(file_a)) ? file_b
                                                              : file_a;
  ASSERT_TRUE(fs::exists(newest));
  fs::resize_file(newest, fs::file_size(newest) / 2);

  CampaignEngine reference_engine(spec, CampaignOptions{});
  const auto reference = job_digests(reference_engine.run());
  CampaignOptions resume_options;
  resume_options.state_dir = state.path.string();
  CampaignEngine resumer(spec, resume_options);
  const CampaignResult resumed = resumer.resume();
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(job_digests(resumed), reference);
}

TEST(CampaignTest, SpecFingerprintSeparatesCampaigns) {
  const CampaignSpec a = two_job_spec();
  CampaignSpec b = two_job_spec();
  b.jobs[1].trials += 1;
  CampaignSpec c = two_job_spec();
  c.config.k = 1;
  EXPECT_EQ(a.fingerprint(), two_job_spec().fingerprint());
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(CampaignTest, SpecFingerprintCoversScenarioParameters) {
  // Same scenario classes (name() and n() identical) but different
  // constructor parameters must fingerprint apart — otherwise a
  // resume folds trials from a different distribution onto the old
  // prefix without anyone noticing.
  const CampaignSpec a = two_job_spec();

  CampaignSpec more_crashes = two_job_spec();
  more_crashes.jobs[1].scenario = std::make_shared<CrashScenario>(5, 2, 3);
  EXPECT_NE(a.fingerprint(), more_crashes.fingerprint());

  CampaignSpec later_crashes = two_job_spec();
  later_crashes.jobs[1].scenario = std::make_shared<CrashScenario>(5, 1, 4);
  EXPECT_NE(a.fingerprint(), later_crashes.fingerprint());

  CampaignSpec noisy = two_job_spec();
  {
    PartitionParams params;
    params.blocks = even_blocks(4, 2);
    params.cross_noise_probability = 0.5;
    params.stabilization_round = 1;
    noisy.jobs[0].scenario =
        std::make_shared<PartitionScenario>(std::move(params));
  }
  EXPECT_NE(a.fingerprint(), noisy.fingerprint());

  CampaignSpec reblocked = two_job_spec();
  {
    PartitionParams params;
    params.blocks = even_blocks(4, 1);  // one block instead of two
    params.cross_noise_probability = 0.0;
    params.stabilization_round = 1;
    reblocked.jobs[0].scenario =
        std::make_shared<PartitionScenario>(std::move(params));
  }
  EXPECT_NE(a.fingerprint(), reblocked.fingerprint());
}

TEST(CampaignTest, ViolatingTrialsSelfArchiveAndReplayBitExact) {
  // k = 1 on a stable two-block partition: every trial decides two
  // distinct values, so every trial is an agreement violation.
  ScratchDir artifacts("campaign_test.artifacts");
  CampaignSpec spec;
  spec.config.k = 1;
  spec.jobs.push_back(CampaignJob{"viol", make_partition_scenario(), 11, 5});

  CampaignOptions options;
  options.artifact_dir = artifacts.path.string();
  options.max_artifacts = 3;
  CampaignEngine engine(spec, options);
  const CampaignResult result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.summaries[0].agreement_violations, 5);
  EXPECT_EQ(result.stats.violations_detected, 5);
  EXPECT_EQ(result.stats.artifacts_captured, 3);  // capped

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(artifacts.path)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(files.size(), 3u);

  for (const fs::path& file : files) {
    // Filenames carry job, trial index and reason.
    const std::string name = file.filename().string();
    EXPECT_EQ(name.rfind("viol-trial-", 0), 0u) << name;
    EXPECT_NE(name.find("-agreement.sskt"), std::string::npos) << name;

    std::ifstream in(file, std::ios::binary);
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    DecodeResult<RunCapture> capture = decode_trace(bytes);
    ASSERT_TRUE(capture.ok()) << capture.error().to_string();

    // The capture replays to the same run the campaign folded: replay
    // the recorded graphs and re-run the original source at the
    // trial's seed; both reports must agree bit-for-bit.
    const std::size_t idx_begin = std::string("viol-trial-").size();
    const std::uint64_t index = std::stoull(name.substr(idx_begin));
    const std::uint64_t seed = mix_seed(11, index);
    EXPECT_EQ(capture.value().header.seed, seed);

    ReplaySource replay(capture.value().graphs);
    const KSetRunReport replayed = run_kset(replay, spec.config);

    const auto direct =
        spec.jobs[0].scenario->capture_trial(seed, spec.config);
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(encode_trace(*direct), bytes);

    EXPECT_FALSE(replayed.verdict.k_agreement);
    EXPECT_EQ(replayed.distinct_values, 2);
    EXPECT_EQ(replayed.n, 4);
  }
}

TEST(CampaignTest, ProgressRecordsTickMonotonically) {
  CampaignSpec spec;
  spec.config.k = 2;
  spec.jobs.push_back(CampaignJob{"conv", make_partition_scenario(), 5, 25});

  std::vector<CampaignProgress> seen;
  CampaignOptions options;
  options.progress_every = 10;
  options.on_progress = [&](const CampaignProgress& p) { seen.push_back(p); };
  CampaignEngine engine(spec, options);
  const CampaignResult result = engine.run();
  ASSERT_TRUE(result.completed);

  // Records at 10 and 20 folded trials plus the final end-of-run one.
  ASSERT_GE(seen.size(), 3u);
  std::int64_t last = -1;
  for (const CampaignProgress& p : seen) {
    EXPECT_EQ(p.job, "conv");
    EXPECT_EQ(p.trials_total, 25);
    EXPECT_GE(p.campaign_trials_done, last);
    last = p.campaign_trials_done;
  }
  EXPECT_EQ(seen.back().campaign_trials_done, 25);
}

TEST(CampaignTest, TerminalProgressRecordReportsTheInterruptedJob) {
  // A kill inside job 0 must leave the final progress record on job 0
  // with its actual folded count — not on the last job of the spec,
  // which was never reached.
  const CampaignSpec spec = two_job_spec();
  std::vector<CampaignProgress> seen;
  CampaignOptions options;
  options.progress_every = 1000;  // only the terminal record fires
  options.on_progress = [&](const CampaignProgress& p) { seen.push_back(p); };
  options.stop_after_trials = 10;
  CampaignEngine engine(spec, options);
  EXPECT_FALSE(engine.run().completed);

  ASSERT_FALSE(seen.empty());
  const CampaignProgress& last = seen.back();
  EXPECT_EQ(last.job, "conv");
  EXPECT_EQ(last.job_index, 0);
  EXPECT_EQ(last.trials_done, 10);
  EXPECT_EQ(last.trials_total, 60);
  EXPECT_EQ(last.campaign_trials_done, 10);
}

TEST(CampaignSpecTest, ParsesTheDocumentedGrammar) {
  const std::string text =
      "# converged partition sweep\n"
      "k = 2\n"
      "guard = at-round-n\n"
      "max_rounds = 30\n"
      "measure_bytes = 1\n"
      "\n"
      "job = partition name=conv n=4 m=2 noise=0 stabilize=1 seed=42 "
      "trials=500\n"
      "job = random-psrcs name=rp n=6 k=2 roots=2 seed=7 trials=20\n"
      "job = crash name=cr n=5 crashes=1 maxcrash=3 seed=9 trials=20\n"
      "job = rotating name=rot n=4 hold=1 seed=3 trials=5\n";
  const SpecParseResult parsed = parse_campaign_spec(text);
  ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
  const CampaignSpec& spec = *parsed.spec;
  EXPECT_EQ(spec.config.k, 2);
  EXPECT_EQ(spec.config.guard, DecisionGuard::kAtRoundN);
  EXPECT_EQ(spec.config.max_rounds, 30);
  EXPECT_TRUE(spec.config.measure_bytes);
  ASSERT_EQ(spec.jobs.size(), 4u);
  EXPECT_EQ(spec.jobs[0].name, "conv");
  EXPECT_EQ(spec.jobs[0].master_seed, 42u);
  EXPECT_EQ(spec.jobs[0].trials, 500);
  EXPECT_EQ(spec.jobs[0].scenario->name(), "partition");
  EXPECT_EQ(spec.jobs[1].scenario->name(), "random-psrcs");
  EXPECT_EQ(spec.jobs[2].scenario->name(), "crash");
  EXPECT_EQ(spec.jobs[3].scenario->name(), "rotating-star");
}

TEST(CampaignSpecTest, RejectsBadInputWithLineNumbers) {
  const struct {
    const char* text;
    int line;
  } cases[] = {
      {"k = 0\njob = partition trials=5\n", 1},       // k out of range
      {"k = abc\njob = partition trials=5\n", 1},     // k not an integer
      {"k = 2\nmax_rounds = soon\n", 2},              // garbage int
      {"k = 2\nmax_rounds = -1\n", 2},                // negative rounds
      {"k = 2\ntail_rounds = 3x\n", 2},               // trailing junk
      {"k = 2\nmeasure_bytes = maybe\n", 2},          // bad bool
      {"k = 2\nbogus = 1\n", 2},                      // unknown config key
      {"k = 2\njob = warp trials=5\n", 2},            // unknown scenario
      {"k = 2\njob = partition n=4\n", 2},            // missing trials
      {"k = 2\njob = partition trials=5 warp=1\n", 2},  // unknown attr
      {"k = 2\nthis is not a key value line\n", 2},   // grammar
      {"k = 2\n", 0},                                 // no jobs at all
  };
  for (const auto& test_case : cases) {
    const SpecParseResult parsed = parse_campaign_spec(test_case.text);
    EXPECT_FALSE(parsed.spec.has_value()) << test_case.text;
    EXPECT_EQ(parsed.line, test_case.line) << test_case.text;
    EXPECT_FALSE(parsed.error.empty()) << test_case.text;
  }
}

}  // namespace
}  // namespace sskel
